//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this API-compatible subset instead: `Criterion`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it runs a warmup pass, then times `sample_size`
//! batches within `measurement_time` and reports mean / min per-iteration
//! wall time on stdout — enough to track the perf trajectory recorded in
//! the repo's `BENCH_*.json` files.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted for API
/// compatibility; this subset always runs one setup per measured batch).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group_name = name.to_string();
        run_benchmark(&group_name, "", 10, Duration::from_secs(2), f);
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        run_benchmark(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing nothing extra; samples were already
    /// reported).
    pub fn finish(self) {}
}

/// Hands the benchmark body a timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup` (setup excluded from the
    /// measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let label = if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };

    // Calibration: find an iteration count that makes one sample ~1/10 of
    // the budget, starting from a single timed call.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = measurement_time
        .div_f64(sample_size as f64)
        .max(Duration::from_micros(100));
    let iters = (per_sample.as_secs_f64() / per_iter.as_secs_f64())
        .clamp(1.0, 1e9)
        .round() as u64;

    let mut times: Vec<f64> = Vec::with_capacity(sample_size);
    let budget = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
        if budget.elapsed() > measurement_time.mul_f64(2.0) {
            break; // stay within ~2x the requested budget
        }
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<48} mean {:>12}  min {:>12}  ({} samples x {} iters)",
        format_time(mean),
        format_time(min),
        times.len(),
        iters
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Bundles benchmark functions into a runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a set of [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0, "routine should have been invoked");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest_batched");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8usize, |b, &n| {
            b.iter_batched(
                || (0..n).map(|i| i as f32).collect::<Vec<_>>(),
                |v| v.iter().sum::<f32>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}

//! Property tests for the data-parallel trainer's reduction contract (the
//! gradient of a batch loss computed as one monolithic graph over all view
//! pairs must agree with per-pair subgraphs reduced in fixed pair order —
//! the worker/reducer split of `pretrain`; agreement is up to f32
//! round-off, as the two paths sum the same per-pair contributions in
//! different association orders), and for the model format's cross-version
//! compatibility: v2 and legacy bare-bank files load as f32, re-save as v3
//! and keep transforms bit-identical.

use crate::views::sample_views;
use proptest::prelude::*;
use tcsl_autodiff::{Graph, ParamStore, VarId};
use tcsl_data::{Dataset, TimeSeries};
use tcsl_shapelet::diff_transform::{bind_values, diff_features_batch, BoundBank};
use tcsl_shapelet::{Measure, ShapeletBank, ShapeletConfig};
use tcsl_tensor::parallel::parallel_map;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

use crate::loss::{multi_scale_alignment, nt_xent};

fn arb_setup() -> impl Strategy<Value = (ShapeletBank, Dataset, Vec<f32>, f32, u64)> {
    (2usize..5, 10usize..26, 0u64..1000, 0usize..3).prop_map(|(n, t, seed, align_case)| {
        let mut rng = seeded(seed);
        let cfg = ShapeletConfig {
            lengths: vec![3, 5],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, 1);
        bank.randomize(&mut rng);
        let series = (0..n)
            .map(|_| TimeSeries::new(Tensor::randn([1, t], &mut rng)))
            .collect();
        let ds = Dataset::unlabeled("prop", series);
        let grains = vec![0.6, 1.0];
        let weight = [0.0f32, 0.5, 1.0][align_case];
        (bank, ds, grains, weight, seed)
    })
}

fn mean_nodes(g: &mut Graph, nodes: &[VarId]) -> VarId {
    let mut acc = nodes[0];
    for &n in &nodes[1..] {
        acc = g.add(acc, n);
    }
    g.mul_scalar(acc, 1.0 / nodes.len() as f32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_and_monolithic_gradients_agree(
        (bank, ds, grains, weight, seed) in arb_setup()
    ) {
        let indices: Vec<usize> = (0..ds.len()).collect();
        let temperature = 0.2f32;
        let snapshot: Vec<Tensor> =
            bank.groups().iter().map(|g| g.shapelets.clone()).collect();
        let mut ps = ParamStore::new();
        for (i, v) in snapshot.iter().enumerate() {
            ps.register(format!("group{i}"), v.clone());
        }

        // Identical view pairs for both paths (fixed RNG stream).
        let pairs = {
            let mut rng = seeded(seed ^ 0xBEEF);
            sample_views(&ds, &indices, &grains, 4, &mut rng)
        };

        // (a) Monolithic: every pair on one tape, loss = mean(contrast)
        //     + weight * mean(align), a single backward sweep.
        let mono = {
            let mut g = Graph::new();
            let bound = bind_values(&mut g, &snapshot);
            let mut contrast_terms = Vec::new();
            let mut align_terms = Vec::new();
            for pair in &pairs {
                let za = diff_features_batch(&mut g, &bank, &bound, &pair.views_a);
                let zb = diff_features_batch(&mut g, &bank, &bound, &pair.views_b);
                contrast_terms.push(nt_xent(&mut g, za, zb, temperature));
                if weight > 0.0 {
                    align_terms.push(multi_scale_alignment(&mut g, &bank, za));
                }
            }
            let contrast = mean_nodes(&mut g, &contrast_terms);
            let loss = if align_terms.is_empty() {
                contrast
            } else {
                let align = mean_nodes(&mut g, &align_terms);
                let weighted = g.mul_scalar(align, weight);
                g.add(contrast, weighted)
            };
            let mut grads = g.backward(loss);
            ps.collect_grads(&mut grads, &bound.group_vars)
        };

        // (b) Data-parallel: one subgraph per pair on worker threads,
        //     per-pair loss = contrast + weight * align, gradients reduced
        //     as the mean in fixed pair order.
        let reduced = {
            let per_pair = parallel_map(pairs.len(), |p| {
                let pair = &pairs[p];
                let mut g = Graph::new();
                let bound = BoundBank { group_vars: ps.bind(&mut g) };
                let za = diff_features_batch(&mut g, &bank, &bound, &pair.views_a);
                let zb = diff_features_batch(&mut g, &bank, &bound, &pair.views_b);
                let contrast = nt_xent(&mut g, za, zb, temperature);
                let loss = if weight > 0.0 {
                    let align = multi_scale_alignment(&mut g, &bank, za);
                    let weighted = g.mul_scalar(align, weight);
                    g.add(contrast, weighted)
                } else {
                    contrast
                };
                let mut grads = g.backward(loss);
                ps.collect_grads(&mut grads, &bound.group_vars)
            });
            let mut acc = ps.grad_accumulator();
            for grads in &per_pair {
                acc.accumulate(grads);
            }
            acc.into_mean()
        };

        prop_assert_eq!(mono.len(), reduced.len());
        for (gi, (a, b)) in mono.iter().zip(&reduced).enumerate() {
            let diff = a.max_abs_diff(b);
            prop_assert!(
                diff < 1e-4,
                "group {} gradients diverge by {} (monolithic vs reduced)",
                gi,
                diff
            );
        }
    }

    #[test]
    fn old_model_files_resave_as_v3_bit_identically(
        (d, t, seed) in (1usize..3, 12usize..30, 0u64..1000)
    ) {
        // Cross-version contract of the model format: a v2 file and a
        // PR-1-era bare-bank file both load as full-precision f32, re-save
        // under the current v3 header, and the re-saved model transforms
        // bit-identically to (a) the loaded one and (b) a model wrapping
        // the original in-memory bank. f32 weights survive the text round
        // trip exactly (shortest round-trip formatting), so this is
        // equality, not a tolerance.
        use crate::pipeline::TimeCsl;
        use tcsl_data::normalize::Normalization;
        use tcsl_shapelet::BankPrecision;

        let mut rng = seeded(seed);
        let cfg = ShapeletConfig {
            lengths: vec![3, 6],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, d);
        bank.randomize(&mut rng);
        let series = TimeSeries::new(Tensor::randn([d, t], &mut rng));

        let norm = [Normalization::ZScore, Normalization::MinMax, Normalization::None]
            [(seed % 3) as usize];
        let legacy = bank.to_text();
        let v2 = format!("tcsl-model v2 normalization={}\n{}", norm.name(), legacy);
        for text in [legacy, v2] {
            let loaded = TimeCsl::from_text(&text).unwrap();
            prop_assert_eq!(loaded.precision(), BankPrecision::Full);
            let original =
                TimeCsl::from_bank_normalized(bank.clone(), loaded.normalization());
            let resaved = loaded.to_text();
            prop_assert!(resaved.starts_with("tcsl-model v3 normalization="));
            prop_assert!(resaved.contains("precision=f32"));
            let reloaded = TimeCsl::from_text(&resaved).unwrap();
            prop_assert_eq!(reloaded.precision(), BankPrecision::Full);
            prop_assert_eq!(reloaded.normalization(), loaded.normalization());
            let a = original.transform_one(&series).unwrap();
            let b = loaded.transform_one(&series).unwrap();
            let c = reloaded.transform_one(&series).unwrap();
            prop_assert_eq!(&a, &b, "load changed features");
            prop_assert_eq!(&b, &c, "v3 re-save changed features");
        }
    }
}

//! The CSL training objectives.
//!
//! * [`nt_xent`] — normalized-temperature cross-entropy over a batch of
//!   positive view pairs (the Multi-Grained Contrasting term, applied per
//!   grain).
//! * [`multi_scale_alignment`] — consistency between per-scale
//!   sub-embeddings of the same series (the Multi-Scale Alignment term).

use tcsl_autodiff::{Graph, VarId};
use tcsl_shapelet::ShapeletBank;

/// NT-Xent contrastive loss between two view batches `z1, z2` of shape
/// `(B, F)` each, where `z1[i]`/`z2[i]` are views of the same series.
/// Re-exported from [`tcsl_autodiff::losses`] (the baselines share it).
pub use tcsl_autodiff::losses::nt_xent;

/// Multi-Scale Alignment: mean squared distance between the L2-normalized
/// per-scale sub-embeddings of each series, averaged over consecutive scale
/// pairs. `feats` is a `(B, D_repr)` feature matrix laid out scale-major
/// (the bank's canonical layout). Returns a scalar `0` node if the bank has
/// a single scale.
pub fn multi_scale_alignment(g: &mut Graph, bank: &ShapeletBank, feats: VarId) -> VarId {
    let ranges = bank.scale_columns();
    if ranges.len() < 2 {
        return g.leaf(tcsl_tensor::Tensor::scalar(0.0));
    }
    let normalized: Vec<VarId> = ranges
        .iter()
        .map(|(_, r)| {
            let sub = g.slice_cols(feats, r.start, r.end);
            g.row_normalize(sub, 1e-8)
        })
        .collect();
    let mut terms = Vec::with_capacity(normalized.len() - 1);
    for w in normalized.windows(2) {
        terms.push(g.mse(w[0], w[1]));
    }
    let mut total = terms[0];
    for &t in &terms[1..] {
        total = g.add(total, t);
    }
    g.mul_scalar(total, 1.0 / terms.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_shapelet::{Measure, ShapeletConfig};
    use tcsl_tensor::rng::seeded;
    use tcsl_tensor::Tensor;

    #[test]
    fn nt_xent_low_when_views_agree_and_differ_across_series() {
        // Perfectly aligned positives, orthogonal negatives → near-minimal loss.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let mut g = Graph::new();
        let z1 = g.leaf(a.clone());
        let z2 = g.leaf(a);
        let loss_good = nt_xent(&mut g, z1, z2, 0.2);
        // Collapsed embeddings (all identical) → high loss.
        let c = Tensor::ones([2, 2]);
        let mut g2 = Graph::new();
        let z1 = g2.leaf(c.clone());
        let z2 = g2.leaf(c);
        let loss_bad = nt_xent(&mut g2, z1, z2, 0.2);
        assert!(
            g.value(loss_good).item() < g2.value(loss_bad).item(),
            "aligned views should score lower: {} vs {}",
            g.value(loss_good).item(),
            g2.value(loss_bad).item()
        );
    }

    #[test]
    fn nt_xent_matches_manual_two_series() {
        // B = 2, identity-like embeddings; compute expected CE by hand.
        let z = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let mut g = Graph::new();
        let z1 = g.param(z.clone());
        let z2 = g.leaf(z);
        let loss = nt_xent(&mut g, z1, z2, 1.0);
        // Normalized rows are unit; sim matrix has 1 on (i, i+2) pairs and 0
        // on cross pairs; diagonal masked to -1e9.
        // Row 0 logits: [-1e9, 0, 1, 0], target 2 → CE = ln(e^0+e^1+e^0) − 1.
        let want = ((1.0f32 + 1.0f32.exp() + 1.0).ln() - 1.0) as f64;
        assert!(
            (g.value(loss).item() as f64 - want).abs() < 1e-5,
            "got {} want {}",
            g.value(loss).item(),
            want
        );
        // Gradient flows to z1.
        let grads = g.backward(loss);
        assert!(grads.get(z1).unwrap().norm_sq() > 0.0);
    }

    #[test]
    fn alignment_zero_for_identical_scales_positive_otherwise() {
        let cfg = ShapeletConfig {
            lengths: vec![3, 5],
            k_per_group: 2,
            measures: vec![Measure::Euclidean],
            stride: 1,
        };
        let bank = tcsl_shapelet::ShapeletBank::new(&cfg, 1);
        // Features: scale A columns 0..2, scale B columns 2..4.
        let same = Tensor::from_vec(vec![1.0, 2.0, 1.0, 2.0, 0.5, 0.1, 0.5, 0.1], [2, 4]);
        let mut g = Graph::new();
        let f = g.leaf(same);
        let loss = multi_scale_alignment(&mut g, &bank, f);
        assert!(g.value(loss).item() < 1e-8);

        let diff = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0], [2, 4]);
        let mut g2 = Graph::new();
        let f = g2.leaf(diff);
        let loss = multi_scale_alignment(&mut g2, &bank, f);
        assert!(g2.value(loss).item() > 0.1);
    }

    #[test]
    fn alignment_is_zero_node_for_single_scale() {
        let cfg = ShapeletConfig {
            lengths: vec![4],
            k_per_group: 3,
            measures: vec![Measure::Euclidean],
            stride: 1,
        };
        let bank = tcsl_shapelet::ShapeletBank::new(&cfg, 1);
        let mut g = Graph::new();
        let f = g.leaf(Tensor::ones([2, 3]));
        let loss = multi_scale_alignment(&mut g, &bank, f);
        assert_eq!(g.value(loss).item(), 0.0);
    }

    #[test]
    fn nt_xent_gradcheck() {
        let mut rng = seeded(20);
        let z1 = Tensor::randn([3, 4], &mut rng);
        let z2 = Tensor::randn([3, 4], &mut rng);
        let report = tcsl_autodiff::gradcheck::gradcheck(&[z1, z2], 1e-2, |g, xs| {
            let a = g.param(xs[0].clone());
            let b = g.param(xs[1].clone());
            let loss = nt_xent(g, a, b, 0.5);
            (vec![a, b], loss)
        });
        assert!(
            report.passes(5e-2),
            "abs={} rel={}",
            report.max_abs_err,
            report.max_rel_err
        );
    }
}

//! Multi-grained view sampling.
//!
//! For each grain `g` (a crop-length fraction), every series in the batch
//! yields two independent random crops. The two crops of one series form a
//! positive pair; all other crops in the batch are negatives. Crops of
//! different grains have different lengths, but the shapelet transform maps
//! them all into the same feature space — the property CSL exploits to
//! contrast across granularities.

use rand::Rng;
use tcsl_data::augment::random_crop;
use tcsl_data::Dataset;
use tcsl_tensor::Tensor;

/// A pair of view batches at one grain: `views_a[i]` and `views_b[i]` are
/// crops of the same underlying series.
pub struct ViewPair {
    /// Crop-length fraction this pair was sampled at.
    pub grain: f32,
    /// First view of each series, as raw `(D, T_crop)` tensors.
    pub views_a: Vec<Tensor>,
    /// Second view of each series.
    pub views_b: Vec<Tensor>,
}

/// Samples a [`ViewPair`] per grain for the series at `indices`.
pub fn sample_views(
    ds: &Dataset,
    indices: &[usize],
    grains: &[f32],
    min_crop: usize,
    rng: &mut impl Rng,
) -> Vec<ViewPair> {
    grains
        .iter()
        .map(|&grain| {
            let mut views_a = Vec::with_capacity(indices.len());
            let mut views_b = Vec::with_capacity(indices.len());
            for &i in indices {
                let s = ds.series(i);
                // Lower bound clamps to at least 1: with `min_crop == 0` a
                // tiny grain rounds the target length down to zero, and a
                // zero-length crop would feed an empty view into the fused
                // kernel (no windows to pool — downstream panic or NaN
                // features). `CslConfig::validate` rejects `min_crop == 0`
                // loudly; this guard keeps direct callers safe too.
                let len = ((s.len() as f32 * grain).round() as usize)
                    .clamp(min_crop.clamp(1, s.len()), s.len());
                views_a.push(random_crop(s, len, rng).values().clone());
                views_b.push(random_crop(s, len, rng).values().clone());
            }
            ViewPair {
                grain,
                views_a,
                views_b,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::TimeSeries;
    use tcsl_tensor::rng::seeded;

    fn ds() -> Dataset {
        let series = (0..5)
            .map(|i| TimeSeries::univariate((0..40).map(|t| (t * i) as f32).collect()))
            .collect();
        Dataset::unlabeled("v", series)
    }

    #[test]
    fn one_pair_per_grain_with_matched_counts() {
        let ds = ds();
        let mut rng = seeded(1);
        let pairs = sample_views(&ds, &[0, 2, 4], &[0.5, 1.0], 4, &mut rng);
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert_eq!(p.views_a.len(), 3);
            assert_eq!(p.views_b.len(), 3);
        }
    }

    #[test]
    fn crop_lengths_follow_grain() {
        let ds = ds();
        let mut rng = seeded(2);
        let pairs = sample_views(&ds, &[1], &[0.5, 1.0], 4, &mut rng);
        assert_eq!(pairs[0].views_a[0].cols(), 20);
        assert_eq!(pairs[1].views_a[0].cols(), 40);
    }

    #[test]
    fn min_crop_clamps_tiny_grains() {
        let ds = ds();
        let mut rng = seeded(3);
        let pairs = sample_views(&ds, &[1], &[0.01], 6, &mut rng);
        assert_eq!(pairs[0].views_a[0].cols(), 6);
    }

    #[test]
    fn tiny_grain_with_zero_min_crop_never_yields_empty_views() {
        // Regression: grain 0.01 over length-40 series rounds to 0, and
        // min_crop == 0 used to let that through as a zero-length crop.
        let ds = ds();
        let mut rng = seeded(5);
        let pairs = sample_views(&ds, &[0, 1, 2], &[0.01], 0, &mut rng);
        for p in &pairs {
            for v in p.views_a.iter().chain(&p.views_b) {
                assert!(v.cols() >= 1, "sampled a zero-length view");
            }
        }
    }

    #[test]
    fn views_of_same_series_usually_differ() {
        let ds = ds();
        let mut rng = seeded(4);
        let pairs = sample_views(&ds, &[3], &[0.5], 4, &mut rng);
        // With grain 0.5 over length 40 there are 21 possible offsets; the
        // two views of one series should not always be identical.
        assert_ne!(pairs[0].views_a[0], pairs[0].views_b[0]);
    }
}

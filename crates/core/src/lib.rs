#![warn(missing_docs)]
// The error wall (clippy.toml) exempts test builds: tests assert on values
// and unwrap() freely.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]
//! # tcsl-core
//!
//! **Contrastive Shapelet Learning (CSL)** and the TimeCSL unified pipeline
//! (paper §2).
//!
//! The crate trains the Shapelet Transformer `f` from `tcsl-shapelet`
//! without labels, by jointly optimizing:
//!
//! * **Multi-Grained Contrasting** ([`loss::nt_xent`]): two random crops of
//!   the same series — sampled at several *grains* (crop-length fractions)
//!   — are positives, crops of other series in the batch are negatives;
//!   NT-Xent is applied per grain and averaged.
//! * **Multi-Scale Alignment** ([`loss::multi_scale_alignment`]): the
//!   per-scale sub-embeddings of one series are pulled toward consistent
//!   geometry across scales.
//!
//! After pre-training, [`pipeline::TimeCsl`] exposes the paper's two modes:
//! *freezing* (extract features, hand them to any analyzer) and
//! *fine-tuning* ([`finetune`]: a linear head `g` stacked on `f`, both
//! updated by backpropagation — the semi-supervised configuration of §2.2).

pub mod config;
pub mod finetune;
pub mod loss;
pub mod pipeline;
#[cfg(test)]
mod proptests;
pub mod trainer;
pub mod views;

pub use config::CslConfig;
pub use finetune::{FineTuneConfig, LinearHead};
pub use pipeline::TimeCsl;
pub use tcsl_shapelet::diff_transform::DiffPath;
pub use trainer::{pretrain, TrainingReport};

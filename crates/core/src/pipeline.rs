//! The TimeCSL unified pipeline (paper Figure 2).
//!
//! One pre-trained Shapelet Transformer serves every downstream task: the
//! pipeline z-normalizes incoming series, transforms them into the
//! shapelet-based representation, and hands the features to any analyzer
//! (freezing mode) or fine-tunes jointly with a linear head (fine-tuning
//! mode). It also exposes the shapelet-subset operations behind the demo's
//! "redo the analysis with the selected shapelets" exploration step.

use crate::config::CslConfig;
use crate::finetune::{fine_tune, FineTuneConfig, FineTuneReport, LinearHead};
use crate::trainer::{pretrain, TrainingReport};
use tcsl_data::normalize::{normalize_dataset, normalize_series, Normalization};
use tcsl_data::{Dataset, TimeSeries};
use tcsl_error::{TcslError, TcslResult};
use tcsl_shapelet::init::init_from_data;
use tcsl_shapelet::transform::{transform_dataset, transform_series};
use tcsl_shapelet::{BankPrecision, ShapeletBank, ShapeletConfig};
use tcsl_tensor::quant::QuantScheme;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

/// A pre-trained TimeCSL model: the learned Shapelet Transformer plus the
/// input normalization it was trained under.
#[derive(Clone, Debug)]
pub struct TimeCsl {
    bank: ShapeletBank,
    normalization: Normalization,
}

impl TimeCsl {
    /// Step 1 + 2 of the demo: configure the Shapelet Transformer (or pass
    /// `None` for the recommended adaptive configuration, §4.2-style) and
    /// run unsupervised contrastive learning on `train`.
    ///
    /// Labels on `train`, if any, are ignored — pre-training is fully
    /// unsupervised.
    pub fn pretrain(
        train: &Dataset,
        shapelet_cfg: Option<ShapeletConfig>,
        csl_cfg: &CslConfig,
    ) -> (TimeCsl, TrainingReport) {
        Self::pretrain_normalized(train, shapelet_cfg, csl_cfg, Normalization::ZScore)
    }

    /// [`Self::pretrain`] under an explicit input normalization. The chosen
    /// normalization becomes part of the model (applied to every later
    /// transform/fine-tune input and persisted by [`Self::save`]).
    pub fn pretrain_normalized(
        train: &Dataset,
        shapelet_cfg: Option<ShapeletConfig>,
        csl_cfg: &CslConfig,
        normalization: Normalization,
    ) -> (TimeCsl, TrainingReport) {
        assert!(!train.is_empty(), "cannot pre-train on an empty dataset");
        let normed = normalize_dataset(&train.without_labels(), normalization);
        let cfg = shapelet_cfg.unwrap_or_else(|| ShapeletConfig::adaptive(normed.max_len()));
        let mut bank = ShapeletBank::new(&cfg, normed.n_vars());
        let mut rng = seeded(csl_cfg.seed ^ 0x5113);
        init_from_data(&mut bank, &normed, csl_cfg.init_oversample, &mut rng);
        let report = pretrain(&mut bank, &normed, csl_cfg);
        if let Some(scheme) = csl_cfg.bank_precision.scheme() {
            // Freshly trained taps are finite (the trainer optimizes a
            // finite loss under a validated config) and i16's per-row scale
            // absorbs any range, so the only quantize failure reachable
            // from here would be an f16 overflow from wildly diverged
            // training — a trainer bug, not a request error.
            #[allow(clippy::disallowed_methods)]
            bank.quantize(scheme)
                .expect("post-training quantization of freshly trained taps");
        }
        (
            TimeCsl {
                bank,
                normalization,
            },
            report,
        )
    }

    /// Wraps an externally constructed bank (e.g. loaded from disk),
    /// assuming the default z-score input normalization.
    pub fn from_bank(bank: ShapeletBank) -> TimeCsl {
        Self::from_bank_normalized(bank, Normalization::ZScore)
    }

    /// Wraps an externally constructed bank together with the input
    /// normalization it was trained under.
    pub fn from_bank_normalized(bank: ShapeletBank, normalization: Normalization) -> TimeCsl {
        TimeCsl {
            bank,
            normalization,
        }
    }

    /// The learned Shapelet Transformer.
    pub fn bank(&self) -> &ShapeletBank {
        &self.bank
    }

    /// The input normalization applied before every transform.
    pub fn normalization(&self) -> Normalization {
        self.normalization
    }

    /// The model's inference precision ([`BankPrecision::Full`] unless
    /// quantized).
    pub fn precision(&self) -> BankPrecision {
        self.bank.precision()
    }

    /// Quantizes the model's bank in place for inference — the explicit
    /// post-training step behind `timecsl quantize`. See
    /// [`ShapeletBank::quantize`] for the precision contract; non-finite
    /// taps and f16 range overflow are typed request errors.
    pub fn quantize(&mut self, scheme: QuantScheme) -> TcslResult<()> {
        self.bank.quantize(scheme)
    }

    /// Representation dimensionality `D_repr`.
    pub fn repr_dim(&self) -> usize {
        self.bank.repr_dim()
    }

    /// Stable names of the feature columns.
    pub fn feature_names(&self) -> Vec<String> {
        self.bank.feature_names()
    }

    /// Transforms a dataset into its `(N, D_repr)` representation
    /// (normalizing each series the way training did).
    ///
    /// Empty datasets, dimension mismatches and non-finite samples are
    /// request errors ([`TcslError`]), not panics.
    pub fn transform(&self, ds: &Dataset) -> TcslResult<Tensor> {
        let normed = normalize_dataset(ds, self.normalization);
        transform_dataset(&self.bank, &normed)
    }

    /// Transforms one series.
    pub fn transform_one(&self, s: &TimeSeries) -> TcslResult<Vec<f32>> {
        let normed = normalize_series(s, self.normalization);
        transform_series(&self.bank, &normed)
    }

    /// Fine-tuning mode: trains a linear head (and, unless frozen, the
    /// shapelets) on labeled data. The model's bank is updated in place.
    pub fn fine_tune(
        &mut self,
        labeled: &Dataset,
        cfg: &FineTuneConfig,
    ) -> (LinearHead, FineTuneReport) {
        let normed = normalize_dataset(labeled, self.normalization);
        fine_tune(&mut self.bank, &normed, cfg)
    }

    /// Restricts the model to the shapelets behind the given feature
    /// columns — the demo's iterative re-analysis with a shapelet subset.
    /// Unknown or empty column selections are request errors.
    pub fn with_selected_features(&self, columns: &[usize]) -> TcslResult<TimeCsl> {
        Ok(TimeCsl {
            bank: self.bank.subset_columns(columns)?,
            normalization: self.normalization,
        })
    }

    /// Restricts the model to all shapelets of one length (the §3
    /// walkthrough: "redo Step 3 using the learned shapelets of length L").
    /// A length the bank does not carry is a request error listing the
    /// available scales.
    pub fn with_scale(&self, len: usize) -> TcslResult<TimeCsl> {
        Ok(TimeCsl {
            bank: self.bank.subset_scale(len)?,
            normalization: self.normalization,
        })
    }

    /// Serializes the model to a versioned text format: a `tcsl-model v3`
    /// header carrying the input normalization and the bank precision,
    /// followed by the bank text (always the f32 view — for a quantized
    /// bank that is the *dequantized* view, so the stored weights are
    /// exactly what the kernels compute with) and, for i16, a `scales`
    /// section persisting the per-shapelet quantization scales. Re-loading
    /// therefore reconstructs the identical half-width taps, and transforms
    /// round-trip bit-identically at every precision.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> TcslResult<()> {
        tcsl_error::write_file(path, self.to_text())
    }

    /// The versioned model text format written by [`Self::save`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "tcsl-model v3 normalization={} precision={}\n{}",
            self.normalization.name(),
            self.bank.precision().name(),
            self.bank.to_text()
        );
        // i16 is the one precision whose dequantized f32 view does not
        // determine the stored taps (the scale is a free parameter), so its
        // scales are part of the format.
        if self.bank.precision() == BankPrecision::I16 {
            if let Some(qps) = self.bank.quantized() {
                let _ = writeln!(out, "scales groups={}", qps.len());
                for qp in qps {
                    let row: Vec<String> = qp
                        .scales()
                        .unwrap_or(&[])
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    let _ = writeln!(out, "{}", row.join(" "));
                }
            }
        }
        out
    }

    /// Loads a model saved by [`Self::save`]. Accepts the current
    /// `tcsl-model v3` format, v2 files (no precision token — they load as
    /// f32) and PR-1-era bare-bank files (which carry no normalization and
    /// load under the z-score default they were written with).
    pub fn load(path: impl AsRef<std::path::Path>) -> TcslResult<TimeCsl> {
        use tcsl_error::ResultExt as _;
        let text = tcsl_error::read_to_string(&path)?;
        Self::from_text(&text).with_context(|| format!("loading model {}", path.as_ref().display()))
    }

    /// Parses the model text format (see [`Self::load`] for accepted
    /// versions).
    ///
    /// Structural damage (wrong magic, unsupported version, missing
    /// sections, bad normalization tag) is [`TcslError::ModelFormat`];
    /// non-numeric fields inside the bank are [`TcslError::Parse`].
    pub fn from_text(text: &str) -> TcslResult<TimeCsl> {
        let first = text
            .lines()
            .next()
            .ok_or_else(|| TcslError::model_format("tcsl-model header", "empty model file"))?;
        if !first.starts_with("tcsl-model") {
            // Backward compatibility: a bare bank file (PR-1 era).
            let bank = ShapeletBank::from_text(text)?;
            return Ok(TimeCsl::from_bank(bank));
        }
        let mut version = None;
        let mut normalization = None;
        let mut precision = None;
        for tok in first.split_whitespace().skip(1) {
            if let Some(v) = tok.strip_prefix('v') {
                if version.is_none() && v.chars().all(|c| c.is_ascii_digit()) {
                    version = Some(v.to_string());
                }
            }
            if let Some(v) = tok.strip_prefix("normalization=") {
                normalization = Some(Normalization::parse(v).ok_or_else(|| {
                    TcslError::model_format("normalization in {zscore, minmax, none}", v)
                })?);
            }
            if let Some(v) = tok.strip_prefix("precision=") {
                precision =
                    Some(BankPrecision::parse(v).ok_or_else(|| {
                        TcslError::model_format("precision in {f32, f16, i16}", v)
                    })?);
            }
        }
        let precision = match version.as_deref() {
            // v2 predates quantization: always full precision.
            Some("2") => BankPrecision::Full,
            Some("3") => precision
                .ok_or_else(|| TcslError::model_format("precision= in model header", first))?,
            _ => return Err(TcslError::model_format("tcsl-model v2/v3 header", first)),
        };
        let normalization = normalization
            .ok_or_else(|| TcslError::model_format("normalization= in model header", first))?;
        let rest = match text.split_once('\n') {
            Some((_, rest)) => rest,
            None => {
                return Err(TcslError::model_format(
                    "bank section after model header",
                    "end of file",
                ))
            }
        };
        // The bank parser reads exactly its own section; a trailing scales
        // section passes through untouched.
        let mut bank = ShapeletBank::from_text(rest)?;
        match precision {
            BankPrecision::Full => {}
            // The stored weights are the dequantized view; f16
            // re-quantization of dequantized values is exact, so this
            // reconstructs the identical half-width taps.
            BankPrecision::F16 => bank.quantize(QuantScheme::F16)?,
            // i16 needs the persisted scales: re-quantizing the dequantized
            // view under the original scale is exact, while a re-derived
            // scale would drift.
            BankPrecision::I16 => {
                let scales = parse_scales_section(rest, bank.groups().len())?;
                bank.quantize_with_scales(&scales)?;
            }
        }
        Ok(TimeCsl::from_bank_normalized(bank, normalization))
    }
}

/// Parses the `scales` section of a `precision=i16` model: a
/// `scales groups=<n>` line after the bank section, then one
/// whitespace-separated row of per-shapelet scales per group.
fn parse_scales_section(bank_text: &str, n_groups: usize) -> TcslResult<Vec<Vec<f32>>> {
    let mut lines = bank_text.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((_, l)) if l.starts_with("scales ") => break l,
            Some(_) => continue,
            None => {
                return Err(TcslError::model_format(
                    "scales section for precision=i16",
                    "end of file",
                ))
            }
        }
    };
    let declared = header
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("groups="))
        .ok_or_else(|| TcslError::model_format("groups=<n> in scales header", header))?;
    if declared != n_groups.to_string() {
        return Err(TcslError::model_format(
            format!("scales for {n_groups} groups"),
            format!("groups={declared}"),
        ));
    }
    let mut out = Vec::with_capacity(n_groups);
    for gi in 0..n_groups {
        let (lineno, line) = lines.next().ok_or_else(|| {
            TcslError::model_format(format!("scale row for group {gi}"), "end of file")
        })?;
        let row = line
            .split_whitespace()
            .map(|tok| {
                tok.parse::<f32>().map_err(|e| {
                    TcslError::parse("tcsl-model", lineno + 1, format!("bad scale '{tok}': {e}"))
                })
            })
            .collect::<TcslResult<Vec<f32>>>()?;
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;
    use tcsl_shapelet::Measure;

    fn quick_cfg() -> (ShapeletConfig, CslConfig) {
        (
            ShapeletConfig {
                lengths: vec![8, 16],
                k_per_group: 4,
                measures: vec![Measure::Euclidean, Measure::Cosine],
                stride: 1,
            },
            CslConfig {
                epochs: 3,
                batch_size: 8,
                grains: vec![0.7, 1.0],
                seed: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn end_to_end_pretrain_and_transform() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 21);
        let (scfg, ccfg) = quick_cfg();
        let (model, report) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        assert_eq!(report.epoch_total.len(), 3);
        let feats = model.transform(&test).unwrap();
        assert_eq!(feats.rows(), test.len());
        assert_eq!(feats.cols(), model.repr_dim());
        assert!(feats.all_finite());
        // Single-series path agrees with the batch path.
        let one = model.transform_one(test.series(0)).unwrap();
        for (a, b) in one.iter().zip(feats.row(0)) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn adaptive_config_is_used_when_none_given() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, _) = archive::generate_split(&entry, 22);
        let small = train.subset(&(0..8).collect::<Vec<_>>(), "small");
        let ccfg = CslConfig {
            epochs: 1,
            batch_size: 4,
            grains: vec![1.0],
            seed: 2,
            ..Default::default()
        };
        let (model, _) = TimeCsl::pretrain(&small, None, &ccfg);
        // Adaptive lengths for T=128: 13, 26, 52, 103.
        assert_eq!(model.bank().scales(), vec![13, 26, 52, 103]);
        assert_eq!(model.repr_dim(), 4 * 3 * 10);
    }

    #[test]
    fn subset_models_transform_fewer_columns() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 23);
        let (scfg, ccfg) = quick_cfg();
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        let by_scale = model.with_scale(16).unwrap();
        assert_eq!(by_scale.repr_dim(), 8);
        let feats = by_scale.transform(&test).unwrap();
        assert_eq!(feats.cols(), 8);

        let by_cols = model.with_selected_features(&[0, 5, 9]).unwrap();
        assert_eq!(by_cols.repr_dim(), 3);
    }

    #[test]
    fn save_load_round_trip() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 24);
        let (scfg, ccfg) = quick_cfg();
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        let dir = std::env::temp_dir().join("tcsl_pipeline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tcsl");
        model.save(&path).unwrap();
        let loaded = TimeCsl::load(&path).unwrap();
        let a = model.transform(&test).unwrap();
        let b = loaded.transform(&test).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_load_preserves_every_normalization() {
        // Regression: save() used to persist only the bank and load()
        // hard-coded ZScore, so a MinMax/None model round-tripped to wrong
        // features.
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 25);
        let (scfg, ccfg) = quick_cfg();
        for norm in Normalization::ALL {
            let (model, _) = TimeCsl::pretrain_normalized(&train, Some(scfg.clone()), &ccfg, norm);
            assert_eq!(model.normalization(), norm);
            let loaded = TimeCsl::from_text(&model.to_text()).unwrap();
            assert_eq!(loaded.normalization(), norm);
            let a = model.transform(&test).unwrap();
            let b = loaded.transform(&test).unwrap();
            assert!(a.max_abs_diff(&b) < 1e-5, "features changed under {norm:?}");
        }
        // Distinct normalizations must actually produce distinct features
        // (otherwise this test would be vacuous).
        let (m1, _) =
            TimeCsl::pretrain_normalized(&train, Some(scfg.clone()), &ccfg, Normalization::ZScore);
        let wrong = TimeCsl::from_bank_normalized(m1.bank().clone(), Normalization::None);
        assert!(
            m1.transform(&test)
                .unwrap()
                .max_abs_diff(&wrong.transform(&test).unwrap())
                > 1e-3
        );
    }

    #[test]
    fn legacy_bare_bank_files_still_load() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 26);
        let (scfg, ccfg) = quick_cfg();
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        // A PR-1-era file is exactly the bank text, no model header.
        let legacy = model.bank().to_text();
        let loaded = TimeCsl::from_text(&legacy).unwrap();
        assert_eq!(loaded.normalization(), Normalization::ZScore);
        assert!(
            model
                .transform(&test)
                .unwrap()
                .max_abs_diff(&loaded.transform(&test).unwrap())
                < 1e-5
        );
    }

    #[test]
    fn model_text_rejects_garbage() {
        use tcsl_error::ErrorClass;
        let class = |t: &str| TimeCsl::from_text(t).unwrap_err().class();
        assert_eq!(class(""), ErrorClass::ModelFormat);
        assert_eq!(
            class("tcsl-model v99 normalization=zscore\n"),
            ErrorClass::ModelFormat
        );
        assert_eq!(
            class("tcsl-model v2 normalization=sigma\n"),
            ErrorClass::ModelFormat
        );
        assert_eq!(class("tcsl-model v2\n"), ErrorClass::ModelFormat);
        assert_eq!(
            class("tcsl-model v2 normalization=zscore"),
            ErrorClass::ModelFormat
        );
        // v3 structural damage: missing/unknown precision, and an i16 model
        // without its scales section.
        assert_eq!(
            class("tcsl-model v3 normalization=zscore\ntcsl-bank v1 d=1 groups=0\n"),
            ErrorClass::ModelFormat
        );
        assert_eq!(
            class("tcsl-model v3 normalization=zscore precision=f8\n"),
            ErrorClass::ModelFormat
        );
        assert_eq!(
            class(
                "tcsl-model v3 normalization=zscore precision=i16\n\
                 tcsl-bank v1 d=1 groups=1\ngroup len=2 stride=1 measure=euc k=1\n0.5 0.25\n"
            ),
            ErrorClass::ModelFormat
        );
        // Wrong group count and a non-numeric value in the scales section.
        let with_scales = |scales: &str| {
            format!(
                "tcsl-model v3 normalization=zscore precision=i16\n\
                 tcsl-bank v1 d=1 groups=1\ngroup len=2 stride=1 measure=euc k=1\n0.5 0.25\n{scales}"
            )
        };
        assert_eq!(
            class(&with_scales("scales groups=2\n0.01\n0.01\n")),
            ErrorClass::ModelFormat
        );
        assert_eq!(
            class(&with_scales("scales groups=1\nnope\n")),
            ErrorClass::Parse
        );
        // A non-positive persisted scale is rejected, not divided by.
        assert_eq!(
            class(&with_scales("scales groups=1\n0\n")),
            ErrorClass::ModelFormat
        );
    }

    #[test]
    fn quantized_models_round_trip_bit_identically() {
        use tcsl_shapelet::BankPrecision;
        use tcsl_tensor::quant::QuantScheme;
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 27);
        let (scfg, ccfg) = quick_cfg();
        for (scheme, precision) in [
            (QuantScheme::F16, BankPrecision::F16),
            (QuantScheme::I16, BankPrecision::I16),
        ] {
            let (mut model, _) = TimeCsl::pretrain(&train, Some(scfg.clone()), &ccfg);
            model.quantize(scheme).unwrap();
            assert_eq!(model.precision(), precision);
            let text = model.to_text();
            assert!(text.starts_with(&format!(
                "tcsl-model v3 normalization=zscore precision={}",
                precision.name()
            )));
            let loaded = TimeCsl::from_text(&text).unwrap();
            assert_eq!(loaded.precision(), precision);
            let a = model.transform(&test).unwrap();
            let b = loaded.transform(&test).unwrap();
            // Save → load reconstructs the identical half-width taps, so
            // features are bit-identical, not merely close.
            assert_eq!(
                a.max_abs_diff(&b),
                0.0,
                "{precision:?} round trip must be exact"
            );
            // And a second round trip is a fixed point of the format.
            assert_eq!(loaded.to_text(), text, "{precision:?}");
        }
    }

    #[test]
    fn pretrain_quantizes_when_config_asks() {
        use tcsl_shapelet::BankPrecision;
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 28);
        let (scfg, mut ccfg) = quick_cfg();
        ccfg.bank_precision = BankPrecision::F16;
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg.clone()), &ccfg);
        assert_eq!(model.precision(), BankPrecision::F16);
        assert!(model.bank().quantized().is_some());
        // The quantized model stays close to the full-precision one.
        ccfg.bank_precision = BankPrecision::Full;
        let (full, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        let a = model.transform(&test).unwrap();
        let b = full.transform(&test).unwrap();
        assert!(a.max_abs_diff(&b) < 0.05, "{}", a.max_abs_diff(&b));
    }

    #[test]
    fn quantized_feature_parity_with_full_precision() {
        use tcsl_tensor::quant::QuantScheme;
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 29);
        let (scfg, ccfg) = quick_cfg();
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        let full = model.transform(&test).unwrap();
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            let mut q = model.clone();
            q.quantize(scheme).unwrap();
            let feats = q.transform(&test).unwrap();
            assert!(feats.all_finite());
            assert!(
                full.max_abs_diff(&feats) < 0.05,
                "{scheme:?}: {}",
                full.max_abs_diff(&feats)
            );
        }
    }
}

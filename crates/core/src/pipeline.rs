//! The TimeCSL unified pipeline (paper Figure 2).
//!
//! One pre-trained Shapelet Transformer serves every downstream task: the
//! pipeline z-normalizes incoming series, transforms them into the
//! shapelet-based representation, and hands the features to any analyzer
//! (freezing mode) or fine-tunes jointly with a linear head (fine-tuning
//! mode). It also exposes the shapelet-subset operations behind the demo's
//! "redo the analysis with the selected shapelets" exploration step.

use crate::config::CslConfig;
use crate::finetune::{fine_tune, FineTuneConfig, FineTuneReport, LinearHead};
use crate::trainer::{pretrain, TrainingReport};
use tcsl_data::normalize::{normalize_dataset, normalize_series, Normalization};
use tcsl_data::{Dataset, TimeSeries};
use tcsl_shapelet::init::init_from_data;
use tcsl_shapelet::transform::{transform_dataset, transform_series};
use tcsl_shapelet::{ShapeletBank, ShapeletConfig};
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

/// A pre-trained TimeCSL model: the learned Shapelet Transformer plus the
/// input normalization it was trained under.
#[derive(Clone, Debug)]
pub struct TimeCsl {
    bank: ShapeletBank,
    normalization: Normalization,
}

impl TimeCsl {
    /// Step 1 + 2 of the demo: configure the Shapelet Transformer (or pass
    /// `None` for the recommended adaptive configuration, §4.2-style) and
    /// run unsupervised contrastive learning on `train`.
    ///
    /// Labels on `train`, if any, are ignored — pre-training is fully
    /// unsupervised.
    pub fn pretrain(
        train: &Dataset,
        shapelet_cfg: Option<ShapeletConfig>,
        csl_cfg: &CslConfig,
    ) -> (TimeCsl, TrainingReport) {
        assert!(!train.is_empty(), "cannot pre-train on an empty dataset");
        let normalization = Normalization::ZScore;
        let normed = normalize_dataset(&train.without_labels(), normalization);
        let cfg = shapelet_cfg.unwrap_or_else(|| ShapeletConfig::adaptive(normed.max_len()));
        let mut bank = ShapeletBank::new(&cfg, normed.n_vars());
        let mut rng = seeded(csl_cfg.seed ^ 0x5113);
        init_from_data(&mut bank, &normed, csl_cfg.init_oversample, &mut rng);
        let report = pretrain(&mut bank, &normed, csl_cfg);
        (
            TimeCsl {
                bank,
                normalization,
            },
            report,
        )
    }

    /// Wraps an externally constructed bank (e.g. loaded from disk).
    pub fn from_bank(bank: ShapeletBank) -> TimeCsl {
        TimeCsl {
            bank,
            normalization: Normalization::ZScore,
        }
    }

    /// The learned Shapelet Transformer.
    pub fn bank(&self) -> &ShapeletBank {
        &self.bank
    }

    /// Representation dimensionality `D_repr`.
    pub fn repr_dim(&self) -> usize {
        self.bank.repr_dim()
    }

    /// Stable names of the feature columns.
    pub fn feature_names(&self) -> Vec<String> {
        self.bank.feature_names()
    }

    /// Transforms a dataset into its `(N, D_repr)` representation
    /// (normalizing each series the way training did).
    pub fn transform(&self, ds: &Dataset) -> Tensor {
        let normed = normalize_dataset(ds, self.normalization);
        transform_dataset(&self.bank, &normed)
    }

    /// Transforms one series.
    pub fn transform_one(&self, s: &TimeSeries) -> Vec<f32> {
        let normed = normalize_series(s, self.normalization);
        transform_series(&self.bank, &normed)
    }

    /// Fine-tuning mode: trains a linear head (and, unless frozen, the
    /// shapelets) on labeled data. The model's bank is updated in place.
    pub fn fine_tune(
        &mut self,
        labeled: &Dataset,
        cfg: &FineTuneConfig,
    ) -> (LinearHead, FineTuneReport) {
        let normed = normalize_dataset(labeled, self.normalization);
        fine_tune(&mut self.bank, &normed, cfg)
    }

    /// Restricts the model to the shapelets behind the given feature
    /// columns — the demo's iterative re-analysis with a shapelet subset.
    pub fn with_selected_features(&self, columns: &[usize]) -> TimeCsl {
        TimeCsl {
            bank: self.bank.subset_columns(columns),
            normalization: self.normalization,
        }
    }

    /// Restricts the model to all shapelets of one length (the §3
    /// walkthrough: "redo Step 3 using the learned shapelets of length L").
    pub fn with_scale(&self, len: usize) -> TimeCsl {
        TimeCsl {
            bank: self.bank.subset_scale(len),
            normalization: self.normalization,
        }
    }

    /// Serializes the model (bank text format) to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.bank.to_text())
    }

    /// Loads a model saved by [`Self::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<TimeCsl> {
        let text = std::fs::read_to_string(path)?;
        let bank = ShapeletBank::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(TimeCsl::from_bank(bank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;
    use tcsl_shapelet::Measure;

    fn quick_cfg() -> (ShapeletConfig, CslConfig) {
        (
            ShapeletConfig {
                lengths: vec![8, 16],
                k_per_group: 4,
                measures: vec![Measure::Euclidean, Measure::Cosine],
                stride: 1,
            },
            CslConfig {
                epochs: 3,
                batch_size: 8,
                grains: vec![0.7, 1.0],
                seed: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn end_to_end_pretrain_and_transform() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 21);
        let (scfg, ccfg) = quick_cfg();
        let (model, report) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        assert_eq!(report.epoch_total.len(), 3);
        let feats = model.transform(&test);
        assert_eq!(feats.rows(), test.len());
        assert_eq!(feats.cols(), model.repr_dim());
        assert!(feats.all_finite());
        // Single-series path agrees with the batch path.
        let one = model.transform_one(test.series(0));
        for (a, b) in one.iter().zip(feats.row(0)) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn adaptive_config_is_used_when_none_given() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, _) = archive::generate_split(&entry, 22);
        let small = train.subset(&(0..8).collect::<Vec<_>>(), "small");
        let ccfg = CslConfig {
            epochs: 1,
            batch_size: 4,
            grains: vec![1.0],
            seed: 2,
            ..Default::default()
        };
        let (model, _) = TimeCsl::pretrain(&small, None, &ccfg);
        // Adaptive lengths for T=128: 13, 26, 52, 103.
        assert_eq!(model.bank().scales(), vec![13, 26, 52, 103]);
        assert_eq!(model.repr_dim(), 4 * 3 * 10);
    }

    #[test]
    fn subset_models_transform_fewer_columns() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 23);
        let (scfg, ccfg) = quick_cfg();
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        let by_scale = model.with_scale(16);
        assert_eq!(by_scale.repr_dim(), 8);
        let feats = by_scale.transform(&test);
        assert_eq!(feats.cols(), 8);

        let by_cols = model.with_selected_features(&[0, 5, 9]);
        assert_eq!(by_cols.repr_dim(), 3);
    }

    #[test]
    fn save_load_round_trip() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 24);
        let (scfg, ccfg) = quick_cfg();
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        let dir = std::env::temp_dir().join("tcsl_pipeline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tcsl");
        model.save(&path).unwrap();
        let loaded = TimeCsl::load(&path).unwrap();
        let a = model.transform(&test);
        let b = loaded.transform(&test);
        assert!(a.max_abs_diff(&b) < 1e-5);
        std::fs::remove_file(path).ok();
    }
}

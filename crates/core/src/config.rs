//! CSL training hyperparameters.

use tcsl_shapelet::diff_transform::DiffPath;

/// Configuration of unsupervised contrastive shapelet learning.
#[derive(Clone, Debug)]
pub struct CslConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Series per minibatch (each contributes two views per grain).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// NT-Xent softmax temperature τ.
    pub temperature: f32,
    /// Weight λ of the multi-scale alignment term.
    pub alignment_weight: f32,
    /// Crop-length fractions (the "grains" of multi-grained contrasting).
    pub grains: Vec<f32>,
    /// Minimum crop length in steps.
    pub min_crop: usize,
    /// Candidate-pool oversampling factor for shapelet initialization.
    pub init_oversample: usize,
    /// Fraction of series held out for a per-epoch validation loss
    /// (0 disables validation — the default). The demo's GUI plots this
    /// curve to diagnose over/under-fitting (§3, step 2).
    pub validation_frac: f32,
    /// RNG seed controlling initialization, batching and view sampling.
    pub seed: u64,
    /// Which differentiable-transform implementation training runs:
    /// the fused custom-op kernel (default) or the eager-graph oracle
    /// (parity tests and old-vs-new benchmarking).
    pub diff_path: DiffPath,
}

impl Default for CslConfig {
    fn default() -> Self {
        CslConfig {
            epochs: 20,
            batch_size: 16,
            learning_rate: 0.02,
            temperature: 0.2,
            alignment_weight: 0.5,
            grains: vec![0.5, 0.75, 1.0],
            min_crop: 8,
            init_oversample: 4,
            validation_frac: 0.0,
            seed: 0,
            diff_path: DiffPath::default(),
        }
    }
}

impl CslConfig {
    /// A reduced-budget configuration for unit tests and smoke runs.
    pub fn fast() -> Self {
        CslConfig {
            epochs: 4,
            batch_size: 8,
            grains: vec![0.6, 1.0],
            ..Default::default()
        }
    }

    /// Validates invariants; called by the trainer.
    pub fn validate(&self) {
        assert!(self.epochs >= 1, "need at least one epoch");
        assert!(
            self.batch_size >= 2,
            "contrastive learning needs batch_size >= 2"
        );
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(self.temperature > 0.0, "temperature must be positive");
        assert!(
            self.alignment_weight >= 0.0,
            "alignment weight must be non-negative"
        );
        assert!(!self.grains.is_empty(), "need at least one grain");
        assert!(
            self.grains.iter().all(|&g| g > 0.0 && g <= 1.0),
            "grains must be in (0, 1]"
        );
        assert!(
            self.min_crop >= 1,
            "min_crop must be at least 1 — a zero minimum lets tiny grains \
             round crops down to zero-length views"
        );
        assert!(
            (0.0..0.9).contains(&self.validation_frac),
            "validation_frac must be in [0, 0.9)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CslConfig::default().validate();
        CslConfig::fast().validate();
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn tiny_batch_rejected() {
        CslConfig {
            batch_size: 1,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "grains")]
    fn bad_grain_rejected() {
        CslConfig {
            grains: vec![1.5],
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min_crop")]
    fn zero_min_crop_rejected() {
        CslConfig {
            min_crop: 0,
            ..Default::default()
        }
        .validate();
    }
}

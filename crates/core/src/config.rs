//! CSL training hyperparameters.

use tcsl_error::{TcslError, TcslResult};
use tcsl_shapelet::diff_transform::DiffPath;
use tcsl_shapelet::BankPrecision;

/// Configuration of unsupervised contrastive shapelet learning.
#[derive(Clone, Debug)]
pub struct CslConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Series per minibatch (each contributes two views per grain).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// NT-Xent softmax temperature τ.
    pub temperature: f32,
    /// Weight λ of the multi-scale alignment term.
    pub alignment_weight: f32,
    /// Crop-length fractions (the "grains" of multi-grained contrasting).
    pub grains: Vec<f32>,
    /// Minimum crop length in steps.
    pub min_crop: usize,
    /// Candidate-pool oversampling factor for shapelet initialization.
    pub init_oversample: usize,
    /// Fraction of series held out for a per-epoch validation loss
    /// (0 disables validation — the default). The demo's GUI plots this
    /// curve to diagnose over/under-fitting (§3, step 2).
    pub validation_frac: f32,
    /// RNG seed controlling initialization, batching and view sampling.
    pub seed: u64,
    /// Which differentiable-transform implementation training runs:
    /// the fused custom-op kernel (default) or the eager-graph oracle
    /// (parity tests and old-vs-new benchmarking).
    pub diff_path: DiffPath,
    /// Inference precision of the trained bank: with [`BankPrecision::F16`]
    /// or [`BankPrecision::I16`], pre-training finishes with an automatic
    /// [`tcsl_shapelet::ShapeletBank::quantize`] step, so the returned model
    /// serves (and saves) at half tap width. Training itself always runs in
    /// f32 — only the post-training bank is affected.
    pub bank_precision: BankPrecision,
}

impl Default for CslConfig {
    fn default() -> Self {
        CslConfig {
            epochs: 20,
            batch_size: 16,
            learning_rate: 0.02,
            temperature: 0.2,
            alignment_weight: 0.5,
            grains: vec![0.5, 0.75, 1.0],
            min_crop: 8,
            init_oversample: 4,
            validation_frac: 0.0,
            seed: 0,
            diff_path: DiffPath::default(),
            bank_precision: BankPrecision::Full,
        }
    }
}

impl CslConfig {
    /// A reduced-budget configuration for unit tests and smoke runs.
    pub fn fast() -> Self {
        CslConfig {
            epochs: 4,
            batch_size: 8,
            grains: vec![0.6, 1.0],
            ..Default::default()
        }
    }

    /// Validates invariants; called by the trainer. Each violation is a
    /// [`TcslError::Config`] naming the offending field.
    pub fn validate(&self) -> TcslResult<()> {
        let bad = |msg: &str| Err(TcslError::config(msg.to_string()));
        if self.epochs < 1 {
            return bad("epochs: need at least one epoch");
        }
        if self.batch_size < 2 {
            return bad("batch_size: contrastive learning needs batch_size >= 2");
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return bad("learning_rate must be positive and finite");
        }
        if !(self.temperature.is_finite() && self.temperature > 0.0) {
            return bad("temperature must be positive");
        }
        if !(self.alignment_weight.is_finite() && self.alignment_weight >= 0.0) {
            return bad("alignment_weight must be non-negative");
        }
        if self.grains.is_empty() {
            return bad("grains: need at least one grain");
        }
        if !self.grains.iter().all(|&g| g > 0.0 && g <= 1.0) {
            return bad("grains must be in (0, 1]");
        }
        if self.min_crop < 1 {
            return bad(
                "min_crop must be at least 1 — a zero minimum lets tiny grains \
                 round crops down to zero-length views",
            );
        }
        if !(0.0..0.9).contains(&self.validation_frac) {
            return bad("validation_frac must be in [0, 0.9)");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CslConfig::default().validate().unwrap();
        CslConfig::fast().validate().unwrap();
    }

    fn rejected_with(cfg: CslConfig, needle: &str) {
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains(needle), "{err}");
    }

    #[test]
    fn tiny_batch_rejected() {
        rejected_with(
            CslConfig {
                batch_size: 1,
                ..Default::default()
            },
            "batch_size",
        );
    }

    #[test]
    fn bad_grain_rejected() {
        rejected_with(
            CslConfig {
                grains: vec![1.5],
                ..Default::default()
            },
            "grains",
        );
    }

    #[test]
    fn zero_min_crop_rejected() {
        rejected_with(
            CslConfig {
                min_crop: 0,
                ..Default::default()
            },
            "min_crop",
        );
    }

    #[test]
    fn nan_learning_rate_rejected() {
        rejected_with(
            CslConfig {
                learning_rate: f32::NAN,
                ..Default::default()
            },
            "learning_rate",
        );
    }
}

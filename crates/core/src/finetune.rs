//! Fine-tuning mode (paper §2.2): a task-specific linear head `g` appended
//! to the pre-trained Shapelet Transformer `f`, with `ŷ = g(f(x))`, trained
//! by cross-entropy backpropagation. The shapelets can be updated jointly
//! (the advanced mode) or frozen (linear probing).
//!
//! Like the pre-trainer, each batch runs data-parallel: the cross-entropy
//! of one example is independent of the others given the current
//! parameters, so every example's forward/backward is its own worker
//! subgraph and the main thread reduces the gradients in fixed example
//! order (bit-for-bit identical at any `TCSL_THREADS`).

// Training/experiment path — panics on internal bugs are policy here
// (DESIGN.md, "Error taxonomy & panic policy"), so the request-path error
// wall (clippy.toml) is lifted for this module.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use std::time::{Duration, Instant};
use tcsl_autodiff::{Adam, Graph, Optimizer, ParamStore, VarId};
use tcsl_data::Dataset;
use tcsl_shapelet::diff_transform::{diff_features_batch, write_back, BoundBank};
use tcsl_shapelet::ShapeletBank;
use tcsl_tensor::matmul::matmul_transb;
use tcsl_tensor::parallel::parallel_map;
use tcsl_tensor::rng::{permutation, seeded};
use tcsl_tensor::Tensor;

/// Fine-tuning hyperparameters.
#[derive(Clone, Debug)]
pub struct FineTuneConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Series per minibatch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// When `true`, only the head trains (linear probing); when `false`,
    /// shapelets are updated jointly — the paper's fine-tuning mode.
    pub freeze_shapelets: bool,
    /// RNG seed for batching and head initialization.
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epochs: 30,
            batch_size: 16,
            learning_rate: 0.02,
            freeze_shapelets: false,
            seed: 0,
        }
    }
}

/// The trained linear analyzer `g`: `logits = z·Wᵀ + b`.
#[derive(Clone, Debug)]
pub struct LinearHead {
    /// `(C, F)` weight matrix.
    pub w: Tensor,
    /// `(C)` bias vector.
    pub b: Tensor,
}

impl LinearHead {
    /// Class-logit matrix `(N, C)` for a feature matrix `(N, F)`.
    pub fn logits(&self, feats: &Tensor) -> Tensor {
        let raw = matmul_transb(feats, &self.w);
        raw.add_row_vector(&self.b)
    }

    /// Predicted class per row.
    pub fn predict(&self, feats: &Tensor) -> Vec<usize> {
        let l = self.logits(feats);
        (0..l.rows())
            .map(|i| {
                let row = l.row(i);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }
}

/// Loss curve of one fine-tuning run.
#[derive(Clone, Debug)]
pub struct FineTuneReport {
    /// Mean cross-entropy per epoch.
    pub epoch_loss: Vec<f32>,
    /// Wall-clock time.
    pub wall_time: Duration,
}

/// Fine-tunes `bank` (unless frozen) and a fresh linear head on a labeled
/// dataset. Returns the head and the loss curve; the bank is updated in
/// place when `freeze_shapelets` is false.
pub fn fine_tune(
    bank: &mut ShapeletBank,
    ds: &Dataset,
    cfg: &FineTuneConfig,
) -> (LinearHead, FineTuneReport) {
    assert!(ds.labels().is_some(), "fine-tuning requires labels");
    assert!(ds.len() >= 2, "need at least two labeled series");
    let n_classes = ds.n_classes();
    assert!(n_classes >= 2, "need at least two classes");
    let f_dim = bank.repr_dim();

    let mut rng = seeded(cfg.seed);
    let mut ps = ParamStore::new();
    let n_groups = bank.groups().len();
    if !cfg.freeze_shapelets {
        for (i, grp) in bank.groups().iter().enumerate() {
            ps.register(format!("group{i}"), grp.shapelets.clone());
        }
    }
    let head_w_idx = ps.register(
        "head_w",
        Tensor::randn([n_classes, f_dim], &mut rng).scale(0.05),
    );
    let head_b_idx = ps.register("head_b", Tensor::zeros([n_classes]));
    let mut opt = Adam::new(cfg.learning_rate);

    let _run_span = tcsl_obs::spans::span("fine_tune");
    let start = Instant::now();
    let mut epoch_loss = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _epoch_span = tcsl_obs::spans::span("epoch");
        let epoch_start = Instant::now();
        let order = permutation(&mut rng, ds.len());
        let mut sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let _batch_span = tcsl_obs::spans::span("batch");
            let batch: Vec<Tensor> = chunk
                .iter()
                .map(|&i| ds.series(i).values().clone())
                .collect();
            let targets: Vec<usize> = chunk.iter().map(|&i| ds.label(i)).collect();
            tcsl_obs::counters::FINETUNE_EXAMPLES.add(batch.len() as u64);

            // Fan out: one pool-worker subgraph per example. The batch
            // loss is the mean of per-example cross-entropies, so
            // per-example gradients reduce to the batch gradient by
            // averaging.
            let results = parallel_map(batch.len(), |i| {
                let mut g = Graph::new();
                let bound_all = ps.bind(&mut g);
                let bound = if cfg.freeze_shapelets {
                    BoundBank {
                        group_vars: bank
                            .groups()
                            .iter()
                            .map(|grp| g.leaf(grp.shapelets.clone()))
                            .collect(),
                    }
                } else {
                    BoundBank {
                        group_vars: bound_all[..n_groups].to_vec(),
                    }
                };
                let (w_var, b_var): (VarId, VarId) = (bound_all[head_w_idx], bound_all[head_b_idx]);
                let feats = diff_features_batch(&mut g, bank, &bound, &batch[i..i + 1]);
                let raw = g.matmul_transb(feats, w_var);
                let logits = g.add_row_vec(raw, b_var);
                let loss = g.cross_entropy_logits(logits, &targets[i..i + 1]);
                let loss_val = g.value(loss).item();
                let mut grads = g.backward(loss);
                (loss_val, ps.collect_grads(&mut grads, &bound_all))
            });

            // Reduce in fixed example order.
            let mut acc = ps.grad_accumulator();
            let mut batch_loss = 0.0f32;
            for (loss_val, grads) in &results {
                acc.accumulate(grads);
                batch_loss += loss_val;
            }
            sum += (batch_loss / results.len() as f32) as f64;
            batches += 1;

            let gvec = acc.into_mean();
            opt.step(&mut ps, &gvec);
        }
        epoch_loss.push((sum / batches.max(1) as f64) as f32);
        if tcsl_obs::enabled() {
            let secs = epoch_start.elapsed().as_secs_f64();
            tcsl_obs::trace::emit(
                tcsl_obs::trace::Event::new("finetune_epoch")
                    .u64("epoch", epoch as u64)
                    .f32("loss", *epoch_loss.last().unwrap())
                    .u64("n_series", ds.len() as u64)
                    .f64("secs", secs)
                    .f64("series_per_sec", ds.len() as f64 / secs.max(1e-12)),
            );
        }
    }

    if !cfg.freeze_shapelets {
        let values: Vec<_> = (0..n_groups).map(|i| ps.get(i).clone()).collect();
        write_back(bank, &values);
    }
    let head = LinearHead {
        w: ps.get(head_w_idx).clone(),
        b: ps.get(head_b_idx).clone(),
    };
    (
        head,
        FineTuneReport {
            epoch_loss,
            wall_time: start.elapsed(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;
    use tcsl_shapelet::{
        init::init_from_data, transform::transform_dataset, Measure, ShapeletConfig,
    };

    fn setup() -> (ShapeletBank, Dataset, Dataset) {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 11);
        let (train, test) = (train.znormed(), test.znormed());
        let cfg = ShapeletConfig {
            lengths: vec![8, 16],
            k_per_group: 4,
            measures: vec![Measure::Euclidean, Measure::Cosine],
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, 1);
        init_from_data(&mut bank, &train, 4, &mut seeded(1));
        (bank, train, test)
    }

    fn accuracy(pred: &[usize], ds: &Dataset) -> f32 {
        let hit = pred
            .iter()
            .enumerate()
            .filter(|(i, &p)| p == ds.label(*i))
            .count();
        hit as f32 / ds.len() as f32
    }

    #[test]
    fn fine_tuning_beats_chance_on_motif_data() {
        let (mut bank, train, test) = setup();
        let cfg = FineTuneConfig {
            epochs: 15,
            batch_size: 10,
            seed: 3,
            ..Default::default()
        };
        let (head, report) = fine_tune(&mut bank, &train, &cfg);
        assert_eq!(report.epoch_loss.len(), 15);
        assert!(
            report.epoch_loss.last().unwrap() < &report.epoch_loss[0],
            "loss did not decrease"
        );
        let test_feats = transform_dataset(&bank, &test).unwrap();
        let pred = head.predict(&test_feats);
        let acc = accuracy(&pred, &test);
        assert!(acc > 0.7, "fine-tuned accuracy only {acc}");
    }

    #[test]
    fn frozen_mode_leaves_shapelets_untouched() {
        let (mut bank, train, _) = setup();
        let before: Vec<_> = bank.groups().iter().map(|g| g.shapelets.clone()).collect();
        let cfg = FineTuneConfig {
            epochs: 3,
            freeze_shapelets: true,
            seed: 4,
            ..Default::default()
        };
        let (_head, _) = fine_tune(&mut bank, &train, &cfg);
        for (g, b) in bank.groups().iter().zip(&before) {
            assert_eq!(&g.shapelets, b, "frozen shapelets changed");
        }
    }

    #[test]
    fn joint_mode_updates_shapelets() {
        let (mut bank, train, _) = setup();
        let before: Vec<_> = bank.groups().iter().map(|g| g.shapelets.clone()).collect();
        let cfg = FineTuneConfig {
            epochs: 3,
            freeze_shapelets: false,
            seed: 5,
            ..Default::default()
        };
        fine_tune(&mut bank, &train, &cfg);
        let moved = bank
            .groups()
            .iter()
            .zip(&before)
            .any(|(g, b)| g.shapelets.max_abs_diff(b) > 1e-5);
        assert!(moved);
    }

    #[test]
    fn head_predict_shapes() {
        let head = LinearHead {
            w: Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]),
            b: Tensor::zeros([2]),
        };
        let feats = Tensor::from_vec(vec![3.0, 1.0, 0.0, 2.0], [2, 2]);
        assert_eq!(head.predict(&feats), vec![0, 1]);
        assert_eq!(head.logits(&feats).shape().dims(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "labels")]
    fn unlabeled_dataset_rejected() {
        let (mut bank, train, _) = setup();
        fine_tune(
            &mut bank,
            &train.without_labels(),
            &FineTuneConfig::default(),
        );
    }
}

//! The unsupervised contrastive pre-training loop (paper §2.1).
//!
//! Each step samples a minibatch, draws two crops per series per grain,
//! pushes all views through the differentiable shapelet transform, and
//! minimizes `L = L_contrast + λ·L_align` with Adam. The learning curve is
//! recorded per epoch — the demo plots it so users can "diagnose the model
//! performance" (§3, step 2).
//!
//! # Data-parallel execution
//!
//! The per-grain view pairs of one batch are independent given the current
//! parameter values, so each pair's forward/backward runs as its own
//! subgraph on a persistent-pool worker
//! ([`tcsl_tensor::parallel::parallel_map`] — parked workers woken per
//! batch rather than OS threads spawned per batch; thread count
//! overridable via `TCSL_THREADS`, re-read each dispatch): every worker
//! builds a private [`Graph`], binds the same read-only parameter
//! snapshot, and returns its pair's losses and gradients. The main thread then reduces
//! the gradients **in fixed pair order** and takes one optimizer step.
//! View sampling stays on the main-thread RNG and reduction order never
//! depends on the schedule, so training is bit-for-bit identical at any
//! thread count (`training_is_thread_count_invariant`).

// Training/experiment path — panics on internal bugs are policy here
// (DESIGN.md, "Error taxonomy & panic policy"), so the request-path error
// wall (clippy.toml) is lifted for this module.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::config::CslConfig;
use crate::loss::{multi_scale_alignment, nt_xent};
use crate::views::{sample_views, ViewPair};
use std::time::{Duration, Instant};
use tcsl_autodiff::{Adam, Graph, Optimizer, ParamStore};
use tcsl_data::Dataset;
use tcsl_shapelet::diff_transform::{diff_features_batch_via, write_back, BoundBank, WindowCache};
use tcsl_shapelet::ShapeletBank;
use tcsl_tensor::parallel::parallel_map;
use tcsl_tensor::rng::{permutation, seeded};
use tcsl_tensor::Tensor;

/// Learning-curve record of one pre-training run.
#[derive(Clone, Debug)]
pub struct TrainingReport {
    /// Mean contrastive loss per epoch.
    pub epoch_contrast: Vec<f32>,
    /// Mean alignment loss per epoch.
    pub epoch_align: Vec<f32>,
    /// Mean total loss per epoch.
    pub epoch_total: Vec<f32>,
    /// Validation contrastive loss per epoch (empty when
    /// `validation_frac == 0`).
    pub epoch_validation: Vec<f32>,
    /// Number of optimizer steps taken.
    pub n_steps: usize,
    /// Wall-clock training time.
    pub wall_time: Duration,
}

impl TrainingReport {
    /// Renders the learning curve as a small ASCII chart (one line per
    /// epoch) — the headless stand-in for the GUI's loss plot. When the
    /// validation hold-out was enabled, each line also carries the
    /// held-out contrastive loss (`val` column); without it the layout is
    /// unchanged.
    pub fn learning_curve_ascii(&self) -> String {
        let max = self
            .epoch_total
            .iter()
            .copied()
            .fold(f32::MIN, f32::max)
            .max(1e-9);
        let has_val = self.epoch_validation.len() == self.epoch_total.len();
        let mut out = String::new();
        for (e, &l) in self.epoch_total.iter().enumerate() {
            let bar = "#".repeat(((l / max) * 40.0).round() as usize);
            if has_val {
                let v = self.epoch_validation[e];
                out.push_str(&format!(
                    "epoch {e:>3}  total {l:>8.4}  val {v:>8.4}  {bar}\n"
                ));
            } else {
                out.push_str(&format!("epoch {e:>3}  total {l:>8.4}  {bar}\n"));
            }
        }
        out
    }
}

/// Splits a shuffled index order into training batches. Plain
/// `chunks(batch_size)` can leave a trailing singleton that NT-Xent cannot
/// use (it needs at least one negative), which would silently drop that
/// series from every epoch — instead the leftover is folded into the
/// previous batch, so every series trains every epoch.
fn epoch_batches(order: &[usize], batch_size: usize) -> Vec<Vec<usize>> {
    let mut chunks: Vec<Vec<usize>> = order.chunks(batch_size).map(<[usize]>::to_vec).collect();
    if chunks.len() >= 2 && chunks.last().is_some_and(|c| c.len() < 2) {
        let tail = chunks.pop().unwrap();
        chunks.last_mut().unwrap().extend(tail);
    }
    chunks
}

/// One worker unit of data-parallel pre-training: the full forward/backward
/// of a single view pair against a shared read-only parameter snapshot.
/// Builds its own tape, so any number of these run concurrently.
struct PairGrad {
    contrast: f32,
    align: f32,
    grads: Vec<Tensor>,
}

fn pair_forward_backward(
    ps: &ParamStore,
    bank: &ShapeletBank,
    cfg: &CslConfig,
    pair: &ViewPair,
) -> PairGrad {
    let mut g = Graph::new();
    let bound = BoundBank {
        group_vars: ps.bind(&mut g),
    };
    // One window cache spans both views of the pair: full-grain views are
    // bit-identical crops, so their padded buffers and prefix-sum norms
    // are computed once and shared (the cache is worker-local — it cannot
    // perturb the fixed-order reduction that keeps training
    // thread-count-invariant).
    let mut cache = WindowCache::new();
    let za = diff_features_batch_via(
        cfg.diff_path,
        &mut g,
        bank,
        &bound,
        &pair.views_a,
        &mut cache,
    );
    let zb = diff_features_batch_via(
        cfg.diff_path,
        &mut g,
        bank,
        &bound,
        &pair.views_b,
        &mut cache,
    );
    let contrast = nt_xent(&mut g, za, zb, cfg.temperature);
    let (align_val, loss) = if cfg.alignment_weight > 0.0 {
        let align = multi_scale_alignment(&mut g, bank, za);
        let weighted = g.mul_scalar(align, cfg.alignment_weight);
        let loss = g.add(contrast, weighted);
        (g.value(align).item(), loss)
    } else {
        (0.0, contrast)
    };
    let contrast_val = g.value(contrast).item();
    let mut grads = g.backward(loss);
    let gvec = ps.collect_grads(&mut grads, &bound.group_vars);
    PairGrad {
        contrast: contrast_val,
        align: align_val,
        grads: gvec,
    }
}

/// Runs CSL pre-training, updating `bank` in place. The bank must already
/// be initialized (see [`tcsl_shapelet::init::init_from_data`]); the
/// high-level entry point [`crate::pipeline::TimeCsl::pretrain`] does both.
///
/// # Panics
///
/// Panics when the dataset has fewer than two series, when
/// `validation_frac` holds out so much that fewer than two series remain to
/// train on, or — as a backstop — when an epoch completes without a single
/// optimizer step (training would otherwise silently no-op and report
/// `0.0` losses).
pub fn pretrain(bank: &mut ShapeletBank, ds: &Dataset, cfg: &CslConfig) -> TrainingReport {
    // Training is a panicking layer (see DESIGN.md "Error taxonomy & panic
    // policy"): surface the typed config error as a loud invariant failure.
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    assert!(
        ds.len() >= 2,
        "contrastive pre-training needs at least two series"
    );
    assert_eq!(ds.n_vars(), bank.d, "dataset/bank variable count mismatch");

    let mut rng = seeded(cfg.seed);

    // Optional validation hold-out: the last series of a fixed shuffle.
    // Whenever validation is requested the hold-out must have at least two
    // series (the validation NT-Xent needs a negative), and at least two
    // must remain to train on — otherwise the curve would silently stay
    // empty (or training would no-op), so reject the configuration loudly.
    let n_val = if cfg.validation_frac > 0.0 {
        (((ds.len() as f32) * cfg.validation_frac).round() as usize).max(2)
    } else {
        0
    };
    assert!(
        ds.len() >= n_val + 2,
        "validation_frac {} holds out {n_val} of {} series, leaving fewer than two to train \
         on — use a larger dataset or disable validation",
        cfg.validation_frac,
        ds.len()
    );
    let split = permutation(&mut rng, ds.len());
    let (train_idx, val_idx) = split.split_at(ds.len() - n_val);
    let train_idx: Vec<usize> = train_idx.to_vec();
    let val_idx: Vec<usize> = val_idx.to_vec();

    let mut ps = ParamStore::new();
    for (i, grp) in bank.groups().iter().enumerate() {
        ps.register(format!("group{i}"), grp.shapelets.clone());
    }
    let mut opt = Adam::new(cfg.learning_rate);

    let run_span = tcsl_obs::spans::span("pretrain");
    let start = Instant::now();
    // Baseline for per-epoch peak-alloc reporting. Read-only: resetting the
    // shared counters here would clobber an enclosing `alloc_profile` (the
    // bench binaries profile whole pretrain calls).
    let live0 = tcsl_obs::alloc_track::live_bytes();
    let mut report = TrainingReport {
        epoch_contrast: Vec::with_capacity(cfg.epochs),
        epoch_align: Vec::with_capacity(cfg.epochs),
        epoch_total: Vec::with_capacity(cfg.epochs),
        epoch_validation: Vec::new(),
        n_steps: 0,
        wall_time: Duration::ZERO,
    };

    for epoch in 0..cfg.epochs {
        let epoch_span = tcsl_obs::spans::span("epoch");
        let epoch_start = Instant::now();
        // Parameter snapshot for the update-magnitude telemetry — only
        // cloned when tracing is on.
        let params_before: Option<Vec<Tensor>> =
            tcsl_obs::enabled().then(|| (0..ps.len()).map(|i| ps.get(i).clone()).collect());
        let order: Vec<usize> = {
            let p = permutation(&mut rng, train_idx.len());
            p.into_iter().map(|i| train_idx[i]).collect()
        };
        let mut sums = (0.0f64, 0.0f64, 0.0f64);
        let mut batches = 0usize;
        let mut epoch_pairs = 0usize;
        let mut grad_norm_sum = 0.0f64;
        for chunk in epoch_batches(&order, cfg.batch_size) {
            if chunk.len() < 2 {
                continue; // NT-Xent needs at least one negative.
            }
            let _batch_span = tcsl_obs::spans::span("batch");
            // Batch latency (host-class) and batch-size (deterministic —
            // the sampled pair count is a function of the epoch partition
            // alone) distributions for the run summary.
            let _batch_timer = tcsl_obs::hist::TRAINER_BATCH_NS.start_timer();
            // View sampling stays on the main-thread RNG — the sampled
            // crops are identical at any thread count.
            let pairs = sample_views(ds, &chunk, &cfg.grains, cfg.min_crop, &mut rng);
            tcsl_obs::counters::TRAINER_PAIRS.add(pairs.len() as u64);
            tcsl_obs::hist::TRAINER_BATCH_PAIRS.record(pairs.len() as u64);
            epoch_pairs += pairs.len();

            // Fan out: one independent subgraph per pair, on the shared
            // persistent pool. `parallel_map` returns results in pair
            // order whatever the schedule, and a worker panic re-raises
            // here without killing the pool for the next batch.
            //
            // A non-finite feature value trips the tape's finiteness check
            // deep inside a worker, where the panic names the op but not
            // *when* training derailed. Catch it here to attach the
            // epoch/batch context (and the structured event) before
            // re-raising; unrelated panics resume untouched.
            let forward = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                parallel_map(pairs.len(), |p| {
                    pair_forward_backward(&ps, bank, cfg, &pairs[p])
                })
            }));
            let results = match forward {
                Ok(r) => r,
                Err(payload) => {
                    let detail = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("unknown panic");
                    if detail.contains("non-finite") {
                        tcsl_obs::trace::emit(
                            tcsl_obs::trace::Event::new("non_finite_loss")
                                .u64("epoch", epoch as u64)
                                .u64("batch", batches as u64)
                                .str("detail", detail),
                        );
                        panic!(
                            "non-finite training state at epoch {epoch}, batch {batches}: \
                             {detail} — check the input series for NaN/inf values or lower \
                             the learning rate"
                        );
                    }
                    std::panic::resume_unwind(payload);
                }
            };

            // Reduce in fixed pair order (f32 addition is not associative;
            // a fixed order is what keeps training deterministic).
            let inv = 1.0 / results.len() as f32;
            let mut acc = ps.grad_accumulator();
            let (mut csum, mut asum) = (0.0f32, 0.0f32);
            for r in &results {
                acc.accumulate(&r.grads);
                csum += r.contrast;
                asum += r.align;
            }
            let contrast_mean = csum * inv;
            let align_mean = asum * inv;
            let total = contrast_mean + align_mean * cfg.alignment_weight;

            let gvec = acc.into_mean();
            // Guard *before* the optimizer step: once a NaN/inf loss or
            // gradient reaches Adam every parameter is poisoned, and the
            // old failure mode was a contextless downstream panic. The
            // fixed-order f64 sum keeps the reported norm deterministic.
            let grad_norm = gvec
                .iter()
                .flat_map(|t| t.as_slice())
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt();
            if !total.is_finite() || !grad_norm.is_finite() {
                tcsl_obs::trace::emit(
                    tcsl_obs::trace::Event::new("non_finite_loss")
                        .u64("epoch", epoch as u64)
                        .u64("batch", batches as u64)
                        .f32("contrast", contrast_mean)
                        .f32("align", align_mean)
                        .f32("total", total)
                        .f64("grad_norm", grad_norm),
                );
                panic!(
                    "non-finite training state at epoch {epoch}, batch {batches}: \
                     loss total={total} (contrast={contrast_mean}, align={align_mean}), \
                     gradient norm={grad_norm} — check the input series for NaN/inf values \
                     or lower the learning rate"
                );
            }
            grad_norm_sum += grad_norm;

            sums.0 += contrast_mean as f64;
            if cfg.alignment_weight > 0.0 {
                sums.1 += align_mean as f64;
            }
            sums.2 += total as f64;
            batches += 1;

            opt.step(&mut ps, &gvec);
            report.n_steps += 1;
        }
        assert!(
            batches > 0,
            "pre-training epoch took zero optimizer steps ({} training series, batch_size {}) \
             — the run would silently no-op",
            train_idx.len(),
            cfg.batch_size
        );
        let n = batches as f64;
        report.epoch_contrast.push((sums.0 / n) as f32);
        report.epoch_align.push((sums.1 / n) as f32);
        report.epoch_total.push((sums.2 / n) as f32);

        // Validation: contrastive loss on held-out series, fixed sampling
        // per epoch, no gradient step. Pairs are scored on worker threads
        // (values only), mean taken in pair order on the main thread.
        if !val_idx.is_empty() {
            let _val_span = tcsl_obs::spans::span("validate");
            let mut vrng = seeded(cfg.seed ^ 0xA11DA7); // fixed validation stream
            let pairs = sample_views(ds, &val_idx, &cfg.grains, cfg.min_crop, &mut vrng);
            tcsl_obs::counters::TRAINER_PAIRS.add(pairs.len() as u64);
            let vals = parallel_map(pairs.len(), |p| {
                let mut g = Graph::new();
                let bound = BoundBank {
                    group_vars: ps.bind(&mut g),
                };
                let mut cache = WindowCache::new();
                let za = diff_features_batch_via(
                    cfg.diff_path,
                    &mut g,
                    bank,
                    &bound,
                    &pairs[p].views_a,
                    &mut cache,
                );
                let zb = diff_features_batch_via(
                    cfg.diff_path,
                    &mut g,
                    bank,
                    &bound,
                    &pairs[p].views_b,
                    &mut cache,
                );
                let v = nt_xent(&mut g, za, zb, cfg.temperature);
                g.value(v).item()
            });
            let mean = vals.iter().sum::<f32>() * (1.0 / vals.len() as f32);
            report.epoch_validation.push(mean);
        }

        // Per-epoch structured event. Losses, gradient norm, update
        // magnitude and counts are deterministic (fixed-order reductions
        // over input-determined work); `secs`, `series_per_sec` and
        // `peak_alloc_mb` are wall-clock/host quantities — the determinism
        // test excludes exactly those field names.
        if tcsl_obs::enabled() {
            let update_mag = params_before
                .map(|before| {
                    let mut sq = 0.0f64;
                    for (i, old) in before.iter().enumerate() {
                        sq += old
                            .as_slice()
                            .iter()
                            .zip(ps.get(i).as_slice())
                            .map(|(&a, &b)| f64::from(b - a) * f64::from(b - a))
                            .sum::<f64>();
                    }
                    sq.sqrt()
                })
                .unwrap_or(0.0);
            let secs = epoch_start.elapsed().as_secs_f64();
            let peak_mb = tcsl_obs::alloc_track::peak_bytes().saturating_sub(live0) as f64
                / (1024.0 * 1024.0);
            let mut ev = tcsl_obs::trace::Event::new("epoch")
                .u64("epoch", epoch as u64)
                .f32("contrast", *report.epoch_contrast.last().unwrap())
                .f32("align", *report.epoch_align.last().unwrap())
                .f32("total", *report.epoch_total.last().unwrap());
            if let Some(&v) = report.epoch_validation.last() {
                ev = ev.f32("validation", v);
            }
            tcsl_obs::trace::emit(
                ev.f64("grad_norm", grad_norm_sum / n)
                    .f64("update_mag", update_mag)
                    .u64("n_series", train_idx.len() as u64)
                    .u64("n_pairs", epoch_pairs as u64)
                    .f64("secs", secs)
                    .f64("series_per_sec", train_idx.len() as f64 / secs.max(1e-12))
                    .f64("peak_alloc_mb", peak_mb),
            );
        }
        drop(epoch_span);
    }
    drop(run_span);

    // Persist learned shapelets back into the bank.
    let values: Vec<_> = (0..ps.len()).map(|i| ps.get(i).clone()).collect();
    write_back(bank, &values);
    report.wall_time = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;
    use tcsl_shapelet::{init::init_from_data, Measure, ShapeletConfig};

    fn small_setup() -> (ShapeletBank, Dataset) {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, _) = archive::generate_split(&entry, 3);
        let train = train.znormed();
        let cfg = ShapeletConfig {
            lengths: vec![8, 16],
            k_per_group: 4,
            measures: vec![Measure::Euclidean, Measure::Cosine],
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, 1);
        init_from_data(&mut bank, &train, 4, &mut seeded(1));
        (bank, train)
    }

    #[test]
    fn loss_decreases_over_training() {
        let (mut bank, train) = small_setup();
        let cfg = CslConfig {
            epochs: 6,
            batch_size: 10,
            grains: vec![0.7, 1.0],
            learning_rate: 0.05,
            seed: 5,
            ..Default::default()
        };
        let report = pretrain(&mut bank, &train, &cfg);
        assert_eq!(report.epoch_total.len(), 6);
        let first = report.epoch_total[0];
        let last = *report.epoch_total.last().unwrap();
        assert!(
            last < first,
            "training did not reduce the loss: {first} → {last}"
        );
        assert!(report.n_steps > 0);
        assert!(report.wall_time.as_nanos() > 0);
    }

    #[test]
    fn shapelets_actually_move() {
        let (mut bank, train) = small_setup();
        let before: Vec<_> = bank.groups().iter().map(|g| g.shapelets.clone()).collect();
        let cfg = CslConfig {
            epochs: 2,
            batch_size: 8,
            grains: vec![1.0],
            seed: 2,
            ..Default::default()
        };
        pretrain(&mut bank, &train, &cfg);
        let moved = bank
            .groups()
            .iter()
            .zip(&before)
            .any(|(g, b)| g.shapelets.max_abs_diff(b) > 1e-4);
        assert!(moved, "no shapelet changed during training");
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let (bank0, train) = small_setup();
        let cfg = CslConfig {
            epochs: 2,
            batch_size: 8,
            seed: 7,
            ..CslConfig::fast()
        };
        let mut b1 = bank0.clone();
        let mut b2 = bank0.clone();
        let r1 = pretrain(&mut b1, &train, &cfg);
        let r2 = pretrain(&mut b2, &train, &cfg);
        assert_eq!(r1.epoch_total, r2.epoch_total);
        for (g1, g2) in b1.groups().iter().zip(b2.groups()) {
            assert!(g1.shapelets.max_abs_diff(&g2.shapelets) < 1e-6);
        }
    }

    #[test]
    fn epoch_batches_folds_trailing_singleton() {
        // Regression: a trailing chunk of one series was skipped every
        // epoch, so the last series under misaligned splits never trained.
        let order: Vec<usize> = (0..9).collect();
        let batches = epoch_batches(&order, 4);
        assert_eq!(batches, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8]]);
        // Aligned splits are untouched.
        let order: Vec<usize> = (0..8).collect();
        assert_eq!(epoch_batches(&order, 4).len(), 2);
        assert!(epoch_batches(&order, 4).iter().all(|b| b.len() == 4));
        // A single undersized chunk cannot be folded anywhere.
        assert_eq!(epoch_batches(&[7], 4), vec![vec![7]]);
        // Exactly batch_size + 1 becomes one larger batch.
        let order: Vec<usize> = (0..5).collect();
        assert_eq!(epoch_batches(&order, 4), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn misaligned_split_trains_every_series_and_steps_every_batch() {
        let (mut bank, train) = small_setup();
        // Pick a batch size so that len % batch_size == 1 (the old code's
        // dropped-series case) — and assert the step count matches the
        // folded batch layout exactly.
        let n = train.len();
        let batch_size = n - 1; // chunks: [n-1, 1] → folded: [n]
        let cfg = CslConfig {
            epochs: 2,
            batch_size,
            grains: vec![1.0],
            seed: 9,
            ..Default::default()
        };
        let report = pretrain(&mut bank, &train, &cfg);
        assert_eq!(report.n_steps, 2, "one folded batch per epoch expected");
        assert!(report.epoch_total.iter().all(|l| *l != 0.0));
    }

    #[test]
    #[should_panic(expected = "leaving fewer than two to train")]
    fn validation_that_starves_training_is_rejected() {
        // Regression: ds.len() == 3 with a small validation_frac used to
        // yield a 1-series hold-out that failed the >= 2 guard silently —
        // now the configuration is rejected loudly.
        let (mut bank, train) = small_setup();
        let three = train.subset(&[0, 1, 2], "three");
        let cfg = CslConfig {
            epochs: 1,
            validation_frac: 0.2,
            ..CslConfig::fast()
        };
        pretrain(&mut bank, &three, &cfg);
    }

    #[test]
    fn tiny_validation_fraction_still_holds_out_two() {
        // Regression: round(len * frac) could be 0, silently disabling the
        // requested validation curve.
        let (mut bank, train) = small_setup();
        let cfg = CslConfig {
            epochs: 2,
            batch_size: 8,
            grains: vec![1.0],
            validation_frac: 0.01, // rounds to 0 series on this dataset
            seed: 6,
            ..Default::default()
        };
        let report = pretrain(&mut bank, &train, &cfg);
        assert_eq!(report.epoch_validation.len(), 2);
        assert!(report.epoch_validation.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn training_is_thread_count_invariant() {
        // The determinism contract of the data-parallel trainer: view
        // sampling stays on the main-thread RNG and gradients reduce in
        // fixed pair order, so serial (TCSL_THREADS=1) and oversubscribed
        // multi-threaded runs are bit-for-bit identical. Both runs happen
        // inside one test so the env var is never left set for others.
        let (bank0, train) = small_setup();
        let cfg = CslConfig {
            epochs: 2,
            batch_size: 8,
            validation_frac: 0.2,
            seed: 11,
            ..CslConfig::fast()
        };
        let run = |threads: Option<&str>| {
            match threads {
                Some(t) => std::env::set_var("TCSL_THREADS", t),
                None => std::env::remove_var("TCSL_THREADS"),
            }
            let mut b = bank0.clone();
            let r = pretrain(&mut b, &train, &cfg);
            std::env::remove_var("TCSL_THREADS");
            (b, r)
        };
        let (b1, r1) = run(Some("1"));
        let (b4, r4) = run(Some("4"));
        let (bd, rd) = run(None);
        assert_eq!(r1.epoch_total, r4.epoch_total);
        assert_eq!(r1.epoch_contrast, r4.epoch_contrast);
        assert_eq!(r1.epoch_align, r4.epoch_align);
        assert_eq!(r1.epoch_validation, r4.epoch_validation);
        assert_eq!(r1.epoch_total, rd.epoch_total);
        assert_eq!(r1.epoch_validation, rd.epoch_validation);
        for (g1, g4) in b1.groups().iter().zip(b4.groups()) {
            assert_eq!(
                g1.shapelets, g4.shapelets,
                "shapelets differ across thread counts"
            );
        }
        for (g1, gd) in b1.groups().iter().zip(bd.groups()) {
            assert_eq!(g1.shapelets, gd.shapelets);
        }
    }

    #[test]
    fn fused_and_oracle_training_paths_agree() {
        // Training through the custom-op kernel and through the eager
        // oracle graph follows the same optimization trajectory: the
        // gradients agree to float tolerance, so short runs must produce
        // near-identical learning curves and shapelets.
        use tcsl_shapelet::diff_transform::DiffPath;
        let (bank0, train) = small_setup();
        let mk = |path| CslConfig {
            epochs: 2,
            batch_size: 8,
            grains: vec![0.7, 1.0],
            seed: 13,
            diff_path: path,
            ..Default::default()
        };
        let mut bf = bank0.clone();
        let rf = pretrain(&mut bf, &train, &mk(DiffPath::Fused));
        let mut bo = bank0.clone();
        let ro = pretrain(&mut bo, &train, &mk(DiffPath::Oracle));
        for (f, o) in rf.epoch_total.iter().zip(&ro.epoch_total) {
            assert!((f - o).abs() < 1e-3, "epoch loss diverged: {f} vs {o}");
        }
        for (gf, go) in bf.groups().iter().zip(bo.groups()) {
            assert!(
                gf.shapelets.max_abs_diff(&go.shapelets) < 1e-3,
                "trained shapelets diverged across diff paths"
            );
        }
    }

    #[test]
    fn validation_curve_is_tracked_when_requested() {
        let (mut bank, train) = small_setup();
        let cfg = CslConfig {
            epochs: 3,
            batch_size: 8,
            grains: vec![1.0],
            validation_frac: 0.2,
            seed: 4,
            ..Default::default()
        };
        let report = pretrain(&mut bank, &train, &cfg);
        assert_eq!(report.epoch_validation.len(), 3);
        assert!(report.epoch_validation.iter().all(|l| l.is_finite()));
        // Without validation the curve stays empty.
        let (mut bank2, _) = small_setup();
        let cfg0 = CslConfig {
            validation_frac: 0.0,
            ..cfg
        };
        let report = pretrain(&mut bank2, &train, &cfg0);
        assert!(report.epoch_validation.is_empty());
    }

    #[test]
    fn learning_curve_renders() {
        let report = TrainingReport {
            epoch_contrast: vec![1.0, 0.5],
            epoch_align: vec![0.1, 0.05],
            epoch_total: vec![1.05, 0.525],
            epoch_validation: vec![],
            n_steps: 10,
            wall_time: Duration::from_millis(5),
        };
        let chart = report.learning_curve_ascii();
        assert!(chart.contains("epoch   0"));
        assert!(chart.lines().count() == 2);
        // No hold-out: no validation column (the pre-fix layout).
        assert!(!chart.contains("val "));
    }

    #[test]
    fn learning_curve_renders_validation_column() {
        // Regression: the chart silently ignored epoch_validation, so a
        // run with the hold-out enabled plotted only the training loss.
        let report = TrainingReport {
            epoch_contrast: vec![1.0, 0.5],
            epoch_align: vec![0.1, 0.05],
            epoch_total: vec![1.05, 0.525],
            epoch_validation: vec![1.2, 0.9],
            n_steps: 10,
            wall_time: Duration::from_millis(5),
        };
        let chart = report.learning_curve_ascii();
        assert_eq!(chart.lines().count(), 2);
        // Pin the exact line shape: epoch, total, val, then the bar.
        let first = chart.lines().next().unwrap();
        assert!(
            first.starts_with("epoch   0  total   1.0500  val   1.2000  "),
            "unexpected layout: {first:?}"
        );
        assert!(first.ends_with(&"#".repeat(40)), "bar lost: {first:?}");
        assert!(chart.lines().all(|l| l.contains("  val ")));
    }

    fn poisoned_setup() -> (ShapeletBank, Dataset, CslConfig) {
        use tcsl_data::TimeSeries;
        // Clean data to initialize a sane bank, then a NaN-poisoned series
        // in the training set itself.
        let mut series: Vec<TimeSeries> = (0..4)
            .map(|s| {
                TimeSeries::univariate((0..32).map(|t| ((s + t) as f32 * 0.37).sin()).collect())
            })
            .collect();
        let clean = Dataset::unlabeled("clean", series.clone());
        let cfg = ShapeletConfig {
            lengths: vec![8],
            k_per_group: 2,
            measures: vec![Measure::Euclidean],
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, 1);
        init_from_data(&mut bank, &clean, 2, &mut seeded(1));
        // Values this large overflow the squared-distance computation to
        // +inf, which survives the Euclidean pooling (raw NaN inputs are
        // absorbed by an `f32::max` in the kernel and come out as the
        // epsilon floor instead — overflow is the poison that actually
        // propagates to the features).
        series[1] = TimeSeries::univariate(vec![1.0e20; 32]);
        let ds = Dataset::unlabeled("poisoned", series);
        let train_cfg = CslConfig {
            epochs: 1,
            batch_size: 4,
            grains: vec![1.0],
            seed: 3,
            ..CslConfig::fast()
        };
        (bank, ds, train_cfg)
    }

    #[test]
    #[should_panic(expected = "non-finite training state at epoch 0, batch 0")]
    fn poisoned_input_panics_with_epoch_and_batch() {
        let (mut bank, ds, cfg) = poisoned_setup();
        pretrain(&mut bank, &ds, &cfg);
    }

    #[test]
    fn poisoned_input_emits_non_finite_event() {
        let (mut bank, ds, cfg) = poisoned_setup();
        // Memory sink first, then enable: no trace file must appear.
        tcsl_obs::trace::use_memory_sink();
        tcsl_obs::set_enabled(true);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pretrain(&mut bank, &ds, &cfg)
        }));
        tcsl_obs::set_enabled(false);
        let events = tcsl_obs::trace::take_events();
        tcsl_obs::trace::reset_sink();
        assert!(result.is_err(), "poisoned input must abort training");
        // Concurrent tests may have emitted their own events while tracing
        // was on; filter by kind.
        let ev = events
            .iter()
            .find(|e| e.kind == "non_finite_loss")
            .expect("no non_finite_loss event emitted");
        use tcsl_obs::trace::Value;
        assert_eq!(ev.field("epoch"), Some(&Value::U64(0)));
        assert_eq!(ev.field("batch"), Some(&Value::U64(0)));
        // The event carries the failure detail: either the caught tape
        // panic (debug builds) or the non-finite loss/grad values (release
        // builds, where the tape's debug_assert is compiled out).
        let has_context = match (ev.field("detail"), ev.field("total")) {
            (Some(Value::Str(d)), _) => d.contains("non-finite"),
            (None, Some(Value::F64(v))) => !v.is_finite(),
            _ => false,
        };
        assert!(has_context, "event lacks failure context: {ev:?}");
    }

    #[test]
    #[should_panic(expected = "at least two series")]
    fn single_series_rejected() {
        let (mut bank, train) = small_setup();
        let one = train.subset(&[0], "one");
        pretrain(&mut bank, &one, &CslConfig::fast());
    }
}

//! The unsupervised contrastive pre-training loop (paper §2.1).
//!
//! Each step samples a minibatch, draws two crops per series per grain,
//! pushes all views through the differentiable shapelet transform, and
//! minimizes `L = L_contrast + λ·L_align` with Adam. The learning curve is
//! recorded per epoch — the demo plots it so users can "diagnose the model
//! performance" (§3, step 2).

use crate::config::CslConfig;
use crate::loss::{multi_scale_alignment, nt_xent};
use crate::views::sample_views;
use std::time::{Duration, Instant};
use tcsl_autodiff::{Adam, Graph, Optimizer, ParamStore};
use tcsl_data::Dataset;
use tcsl_shapelet::diff_transform::{diff_features_batch, write_back, BoundBank};
use tcsl_shapelet::ShapeletBank;
use tcsl_tensor::rng::{permutation, seeded};

/// Learning-curve record of one pre-training run.
#[derive(Clone, Debug)]
pub struct TrainingReport {
    /// Mean contrastive loss per epoch.
    pub epoch_contrast: Vec<f32>,
    /// Mean alignment loss per epoch.
    pub epoch_align: Vec<f32>,
    /// Mean total loss per epoch.
    pub epoch_total: Vec<f32>,
    /// Validation contrastive loss per epoch (empty when
    /// `validation_frac == 0`).
    pub epoch_validation: Vec<f32>,
    /// Number of optimizer steps taken.
    pub n_steps: usize,
    /// Wall-clock training time.
    pub wall_time: Duration,
}

impl TrainingReport {
    /// Renders the learning curve as a small ASCII chart (one line per
    /// epoch) — the headless stand-in for the GUI's loss plot.
    pub fn learning_curve_ascii(&self) -> String {
        let max = self
            .epoch_total
            .iter()
            .copied()
            .fold(f32::MIN, f32::max)
            .max(1e-9);
        let mut out = String::new();
        for (e, &l) in self.epoch_total.iter().enumerate() {
            let bar = "#".repeat(((l / max) * 40.0).round() as usize);
            out.push_str(&format!("epoch {e:>3}  total {l:>8.4}  {bar}\n"));
        }
        out
    }
}

/// Runs CSL pre-training, updating `bank` in place. The bank must already
/// be initialized (see [`tcsl_shapelet::init::init_from_data`]); the
/// high-level entry point [`crate::pipeline::TimeCsl::pretrain`] does both.
pub fn pretrain(bank: &mut ShapeletBank, ds: &Dataset, cfg: &CslConfig) -> TrainingReport {
    cfg.validate();
    assert!(
        ds.len() >= 2,
        "contrastive pre-training needs at least two series"
    );
    assert_eq!(ds.n_vars(), bank.d, "dataset/bank variable count mismatch");

    let mut rng = seeded(cfg.seed);

    // Optional validation hold-out: the last series of a fixed shuffle.
    let n_val = ((ds.len() as f32) * cfg.validation_frac).round() as usize;
    let n_val = if n_val == 1 {
        2.min(ds.len() / 2)
    } else {
        n_val
    };
    let split = permutation(&mut rng, ds.len());
    let (train_idx, val_idx) = split.split_at(ds.len() - n_val);
    let train_idx: Vec<usize> = train_idx.to_vec();
    let val_idx: Vec<usize> = val_idx.to_vec();

    let mut ps = ParamStore::new();
    for (i, grp) in bank.groups().iter().enumerate() {
        ps.register(format!("group{i}"), grp.shapelets.clone());
    }
    let mut opt = Adam::new(cfg.learning_rate);

    let start = Instant::now();
    let mut report = TrainingReport {
        epoch_contrast: Vec::with_capacity(cfg.epochs),
        epoch_align: Vec::with_capacity(cfg.epochs),
        epoch_total: Vec::with_capacity(cfg.epochs),
        epoch_validation: Vec::new(),
        n_steps: 0,
        wall_time: Duration::ZERO,
    };

    for _epoch in 0..cfg.epochs {
        let order: Vec<usize> = {
            let p = permutation(&mut rng, train_idx.len());
            p.into_iter().map(|i| train_idx[i]).collect()
        };
        let mut sums = (0.0f64, 0.0f64, 0.0f64);
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            if chunk.len() < 2 {
                continue; // NT-Xent needs at least one negative.
            }
            let mut g = Graph::new();
            let bound = BoundBank {
                group_vars: ps.bind(&mut g),
            };
            let pairs = sample_views(ds, chunk, &cfg.grains, cfg.min_crop, &mut rng);

            let mut contrast_terms = Vec::with_capacity(pairs.len());
            let mut align_terms = Vec::with_capacity(pairs.len());
            for pair in &pairs {
                let za = diff_features_batch(&mut g, bank, &bound, &pair.views_a);
                let zb = diff_features_batch(&mut g, bank, &bound, &pair.views_b);
                contrast_terms.push(nt_xent(&mut g, za, zb, cfg.temperature));
                if cfg.alignment_weight > 0.0 {
                    align_terms.push(multi_scale_alignment(&mut g, bank, za));
                }
            }
            let contrast = mean_nodes(&mut g, &contrast_terms);
            let total = if align_terms.is_empty() {
                contrast
            } else {
                let align = mean_nodes(&mut g, &align_terms);
                let weighted = g.mul_scalar(align, cfg.alignment_weight);
                sums.1 += g.value(align).item() as f64;
                g.add(contrast, weighted)
            };
            sums.0 += g.value(contrast).item() as f64;
            sums.2 += g.value(total).item() as f64;
            batches += 1;

            let mut grads = g.backward(total);
            let gvec = ps.collect_grads(&mut grads, &bound.group_vars);
            opt.step(&mut ps, &gvec);
            report.n_steps += 1;
        }
        let n = batches.max(1) as f64;
        report.epoch_contrast.push((sums.0 / n) as f32);
        report.epoch_align.push((sums.1 / n) as f32);
        report.epoch_total.push((sums.2 / n) as f32);

        // Validation: contrastive loss on held-out series, fixed sampling
        // per epoch, no gradient step.
        if !val_idx.is_empty() && val_idx.len() >= 2 {
            let mut vrng = seeded(cfg.seed ^ 0xA11DA7); // fixed validation stream
            let mut g = Graph::new();
            let bound = BoundBank {
                group_vars: ps.bind(&mut g),
            };
            let pairs = sample_views(ds, &val_idx, &cfg.grains, cfg.min_crop, &mut vrng);
            let terms: Vec<_> = pairs
                .iter()
                .map(|pair| {
                    let za = diff_features_batch(&mut g, bank, &bound, &pair.views_a);
                    let zb = diff_features_batch(&mut g, bank, &bound, &pair.views_b);
                    nt_xent(&mut g, za, zb, cfg.temperature)
                })
                .collect();
            let val = mean_nodes(&mut g, &terms);
            report.epoch_validation.push(g.value(val).item());
        }
    }

    // Persist learned shapelets back into the bank.
    let values: Vec<_> = (0..ps.len()).map(|i| ps.get(i).clone()).collect();
    write_back(bank, &values);
    report.wall_time = start.elapsed();
    report
}

fn mean_nodes(g: &mut Graph, nodes: &[tcsl_autodiff::VarId]) -> tcsl_autodiff::VarId {
    assert!(!nodes.is_empty());
    let mut acc = nodes[0];
    for &n in &nodes[1..] {
        acc = g.add(acc, n);
    }
    g.mul_scalar(acc, 1.0 / nodes.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;
    use tcsl_shapelet::{init::init_from_data, Measure, ShapeletConfig};

    fn small_setup() -> (ShapeletBank, Dataset) {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, _) = archive::generate_split(&entry, 3);
        let train = train.znormed();
        let cfg = ShapeletConfig {
            lengths: vec![8, 16],
            k_per_group: 4,
            measures: vec![Measure::Euclidean, Measure::Cosine],
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, 1);
        init_from_data(&mut bank, &train, 4, &mut seeded(1));
        (bank, train)
    }

    #[test]
    fn loss_decreases_over_training() {
        let (mut bank, train) = small_setup();
        let cfg = CslConfig {
            epochs: 6,
            batch_size: 10,
            grains: vec![0.7, 1.0],
            learning_rate: 0.05,
            seed: 5,
            ..Default::default()
        };
        let report = pretrain(&mut bank, &train, &cfg);
        assert_eq!(report.epoch_total.len(), 6);
        let first = report.epoch_total[0];
        let last = *report.epoch_total.last().unwrap();
        assert!(
            last < first,
            "training did not reduce the loss: {first} → {last}"
        );
        assert!(report.n_steps > 0);
        assert!(report.wall_time.as_nanos() > 0);
    }

    #[test]
    fn shapelets_actually_move() {
        let (mut bank, train) = small_setup();
        let before: Vec<_> = bank.groups().iter().map(|g| g.shapelets.clone()).collect();
        let cfg = CslConfig {
            epochs: 2,
            batch_size: 8,
            grains: vec![1.0],
            seed: 2,
            ..Default::default()
        };
        pretrain(&mut bank, &train, &cfg);
        let moved = bank
            .groups()
            .iter()
            .zip(&before)
            .any(|(g, b)| g.shapelets.max_abs_diff(b) > 1e-4);
        assert!(moved, "no shapelet changed during training");
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let (bank0, train) = small_setup();
        let cfg = CslConfig {
            epochs: 2,
            batch_size: 8,
            seed: 7,
            ..CslConfig::fast()
        };
        let mut b1 = bank0.clone();
        let mut b2 = bank0.clone();
        let r1 = pretrain(&mut b1, &train, &cfg);
        let r2 = pretrain(&mut b2, &train, &cfg);
        assert_eq!(r1.epoch_total, r2.epoch_total);
        for (g1, g2) in b1.groups().iter().zip(b2.groups()) {
            assert!(g1.shapelets.max_abs_diff(&g2.shapelets) < 1e-6);
        }
    }

    #[test]
    fn validation_curve_is_tracked_when_requested() {
        let (mut bank, train) = small_setup();
        let cfg = CslConfig {
            epochs: 3,
            batch_size: 8,
            grains: vec![1.0],
            validation_frac: 0.2,
            seed: 4,
            ..Default::default()
        };
        let report = pretrain(&mut bank, &train, &cfg);
        assert_eq!(report.epoch_validation.len(), 3);
        assert!(report.epoch_validation.iter().all(|l| l.is_finite()));
        // Without validation the curve stays empty.
        let (mut bank2, _) = small_setup();
        let cfg0 = CslConfig {
            validation_frac: 0.0,
            ..cfg
        };
        let report = pretrain(&mut bank2, &train, &cfg0);
        assert!(report.epoch_validation.is_empty());
    }

    #[test]
    fn learning_curve_renders() {
        let report = TrainingReport {
            epoch_contrast: vec![1.0, 0.5],
            epoch_align: vec![0.1, 0.05],
            epoch_total: vec![1.05, 0.525],
            epoch_validation: vec![],
            n_steps: 10,
            wall_time: Duration::from_millis(5),
        };
        let chart = report.learning_curve_ascii();
        assert!(chart.contains("epoch   0"));
        assert!(chart.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "at least two series")]
    fn single_series_rejected() {
        let (mut bank, train) = small_setup();
        let one = train.subset(&[0], "one");
        pretrain(&mut bank, &one, &CslConfig::fast());
    }
}

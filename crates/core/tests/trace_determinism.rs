//! The observability determinism contract, end to end: a trace-enabled
//! pre-training run must produce **identical counter totals and identical
//! event values** whatever `TCSL_THREADS` says — only wall-clock span
//! timings and host-shaped fields (`secs`, `series_per_sec`,
//! `peak_alloc_mb`) may differ between schedules.
//!
//! This holds because every instrumented quantity is a function of the
//! input, never of the schedule: view sampling stays on the main-thread
//! RNG, the pairdist row-block partition depends on `N` alone, the window
//! cache is scoped per view pair, and per-epoch loss/grad-norm fields come
//! from the fixed-order gradient reduction.
//!
//! Everything runs inside ONE `#[test]` — the obs registries and the
//! `TCSL_THREADS` variable are process-global, so concurrent test threads
//! would race on them.

// Tests are exempt from the request-path error wall (clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use tcsl_core::{pretrain, CslConfig};
use tcsl_data::{archive, Dataset};
use tcsl_obs::trace::Value;
use tcsl_shapelet::init::init_from_data;
use tcsl_shapelet::{Measure, ShapeletBank, ShapeletConfig};
use tcsl_tensor::rng::seeded;

/// Wall-clock / host-shaped event fields, excluded from the comparison.
const NONDETERMINISTIC_FIELDS: &[&str] = &["secs", "series_per_sec", "peak_alloc_mb"];

fn setup() -> (ShapeletBank, Dataset) {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, _) = archive::generate_split(&entry, 3);
    let train = train.znormed();
    let cfg = ShapeletConfig {
        lengths: vec![8, 16],
        k_per_group: 4,
        measures: vec![Measure::Euclidean, Measure::Cosine],
        stride: 1,
    };
    let mut bank = ShapeletBank::new(&cfg, 1);
    init_from_data(&mut bank, &train, 4, &mut seeded(1));
    (bank, train)
}

/// An event with the wall-clock fields stripped, rendered to JSON so the
/// comparison covers names, order and exact serialized values.
fn deterministic_json(ev: &tcsl_obs::trace::Event) -> String {
    let mut stripped = tcsl_obs::trace::Event::new(ev.kind);
    stripped.fields = ev
        .fields
        .iter()
        .filter(|(name, _)| !NONDETERMINISTIC_FIELDS.contains(name))
        .cloned()
        .collect();
    stripped.to_json()
}

/// Extracts the serialized `"histograms":{...}` section from a run
/// summary by brace counting (instrument names never contain braces).
/// Pinning the serialized bytes — not just the parsed stats — is the
/// contract `timecsl trace --diff` relies on across schedules.
fn histograms_section(summary: &str) -> String {
    let start = summary
        .find("\"histograms\":{")
        .expect("summary has a histograms section");
    let mut depth = 0usize;
    for (i, b) in summary.bytes().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return summary[start..=i].to_string();
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced histograms section in summary");
}

/// What one fully-instrumented pretrain run leaves in the registries.
struct TracedRun {
    counters: Vec<(&'static str, u64)>,
    events: Vec<String>,
    hists: Vec<(&'static str, tcsl_obs::hist::HistStat)>,
    hist_section: String,
}

/// One fully-instrumented pretrain run at the given worker count,
/// returning the aggregated counter totals and the stripped event stream.
fn traced_run(threads: &str) -> TracedRun {
    std::env::set_var("TCSL_THREADS", threads);
    tcsl_obs::trace::use_memory_sink();
    tcsl_obs::counters::reset();
    tcsl_obs::hist::reset();
    tcsl_obs::spans::reset();
    tcsl_obs::set_enabled(true);

    let (mut bank, train) = setup();
    let cfg = CslConfig {
        epochs: 2,
        batch_size: 8,
        validation_frac: 0.2,
        seed: 11,
        ..CslConfig::fast()
    };
    let report = pretrain(&mut bank, &train, &cfg);
    assert_eq!(report.epoch_total.len(), 2);

    let counters = tcsl_obs::counters::counter_snapshot();
    let events: Vec<String> = tcsl_obs::trace::take_events()
        .iter()
        .map(deterministic_json)
        .collect();
    let hists = tcsl_obs::hist::hist_snapshot();
    let summary = tcsl_obs::trace::summary_json("det");
    assert!(
        summary.starts_with("{\"schema\":\"tcsl-run-trace-v2\""),
        "run summary is not schema v2: {}",
        &summary[..summary.len().min(60)]
    );
    let hist_section = histograms_section(&summary);

    tcsl_obs::set_enabled(false);
    tcsl_obs::trace::reset_sink();
    tcsl_obs::counters::reset();
    tcsl_obs::hist::reset();
    tcsl_obs::spans::reset();
    std::env::remove_var("TCSL_THREADS");
    TracedRun {
        counters,
        events,
        hists,
        hist_section,
    }
}

#[test]
fn trainer_trace_is_deterministic() {
    // Serial vs oversubscribed (7 workers on any host): aggregated
    // counter totals and all non-wall-clock event content must be
    // bit-identical.
    let run_1 = traced_run("1");
    let run_7 = traced_run("7");
    let (counters_1, events_1) = (&run_1.counters, &run_1.events);

    assert_eq!(
        counters_1, &run_7.counters,
        "aggregated counter totals differ between TCSL_THREADS=1 and 7"
    );
    assert_eq!(
        events_1, &run_7.events,
        "trace event values differ between TCSL_THREADS=1 and 7"
    );

    // The deterministic histogram class: full bucket arrays, counts and
    // sums — and their serialized summary section — must be bit-identical
    // across schedules (host-class latency histograms are exempt; they
    // live in the separate `host_histograms` section).
    assert_eq!(
        run_1.hists, run_7.hists,
        "deterministic histogram buckets differ between TCSL_THREADS=1 and 7"
    );
    assert_eq!(
        run_1.hist_section, run_7.hist_section,
        "serialized histograms section differs between TCSL_THREADS=1 and 7"
    );
    let batch_pairs = run_1
        .hists
        .iter()
        .find(|(n, _)| *n == "trainer.batch_pairs")
        .map(|&(_, s)| s)
        .expect("trainer.batch_pairs histogram missing from snapshot");
    assert!(
        batch_pairs.count > 0,
        "pretrain recorded no trainer.batch_pairs histogram samples"
    );
    assert!(
        run_1
            .hist_section
            .contains("\"trainer.batch_pairs\":{\"count\":"),
        "summary histograms section does not serialize trainer.batch_pairs"
    );

    // The run actually exercised the instruments: every well-known
    // counter the trainer path touches must be non-zero.
    let value = |name: &str| {
        counters_1
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
    };
    assert!(value("trainer.pairs") > 0);
    assert!(value("window_cache.hit") > 0);
    assert!(value("window_cache.miss") > 0);
    assert!(
        value("dot.dispatch.avx2_fma") + value("dot.dispatch.scalar") > 0,
        "no dot products were dispatched"
    );

    // The event stream carries the per-epoch schema EXPERIMENTS.md
    // documents: one `epoch` event per epoch with the loss, gradient and
    // throughput fields (wall-clock fields stripped here, but present in
    // the raw events — checked via the JSON of an unstripped event).
    let epochs: Vec<&String> = events_1
        .iter()
        .filter(|e| e.starts_with("{\"event\":\"epoch\""))
        .collect();
    assert_eq!(epochs.len(), 2, "expected one epoch event per epoch");
    for (i, e) in epochs.iter().enumerate() {
        assert!(e.contains(&format!("\"epoch\":{i}")));
        for field in [
            "\"contrast\":",
            "\"align\":",
            "\"total\":",
            "\"validation\":",
            "\"grad_norm\":",
            "\"update_mag\":",
            "\"n_series\":",
            "\"n_pairs\":",
        ] {
            assert!(e.contains(field), "epoch event missing {field}: {e}");
        }
    }

    // Raw (unstripped) events still carry the wall-clock fields — they
    // are excluded from the determinism comparison, not from the trace.
    std::env::set_var("TCSL_THREADS", "1");
    tcsl_obs::trace::use_memory_sink();
    tcsl_obs::set_enabled(true);
    let (mut bank, train) = setup();
    let cfg = CslConfig {
        epochs: 1,
        batch_size: 8,
        grains: vec![1.0],
        seed: 11,
        ..CslConfig::fast()
    };
    pretrain(&mut bank, &train, &cfg);
    tcsl_obs::set_enabled(false);
    let raw = tcsl_obs::trace::take_events();
    tcsl_obs::trace::reset_sink();
    tcsl_obs::counters::reset();
    tcsl_obs::spans::reset();
    std::env::remove_var("TCSL_THREADS");
    let epoch = raw
        .iter()
        .find(|e| e.kind == "epoch")
        .expect("epoch event emitted");
    for field in NONDETERMINISTIC_FIELDS {
        match epoch.field(field) {
            Some(Value::F64(v)) => assert!(v.is_finite(), "{field} not finite"),
            other => panic!("epoch event missing wall-clock field {field}: {other:?}"),
        }
    }
}

//! Fast (gradient-free) shapelet transform: series → feature vector.
//!
//! This is the inference path used by the freezing mode, the exploration
//! component and the experiment harnesses. It shares its numerics with
//! [`crate::diff_transform`] (tested for agreement), runs groups serially
//! and series in parallel.
//!
//! [`transform_series`] runs the fused streaming kernel of [`crate::fused`]:
//! no window matrix is materialized, window norms come from one prefix-sum
//! pass per scale, and shapelet norms from the bank's cached
//! [`precomputation`](ShapeletBank::precomputed).
//! [`transform_series_oracle`] keeps the original unfold-based formulation
//! as the reference the fused path is property-tested against (and as the
//! naive baseline of the benchmark trajectory).

use crate::bank::ShapeletBank;
use crate::fused::{pool_group, ScaleWindows};
use crate::quant::pool_measure_quant;
use tcsl_data::{Dataset, TimeSeries};
use tcsl_error::{TcslError, TcslResult};
use tcsl_tensor::parallel::parallel_map;
use tcsl_tensor::window::unfold;
use tcsl_tensor::Tensor;

/// Zero-pads a `(D, T)` series on the right to at least `min_len` steps.
/// Series at least `min_len` long are returned as-is.
pub fn pad_to_len(values: &Tensor, min_len: usize) -> Tensor {
    let (d, t) = (values.rows(), values.cols());
    if t >= min_len {
        return values.clone();
    }
    let mut out = Tensor::zeros([d, min_len]);
    for v in 0..d {
        out.row_mut(v)[..t].copy_from_slice(values.row(v));
    }
    out
}

/// Window matrix for one scale of the bank, padding short series so every
/// scale always yields at least one window.
pub fn windows_for(values: &Tensor, len: usize, stride: usize) -> Tensor {
    let padded = pad_to_len(values, len);
    unfold(&padded, len, stride)
}

/// Validates one request series against the bank: the variable count must
/// match and every sample must be finite. `label` names the series in the
/// error (e.g. `"series 3"`).
pub fn check_series(bank: &ShapeletBank, series: &TimeSeries, label: &str) -> TcslResult<()> {
    if series.n_vars() != bank.d {
        return Err(TcslError::shape_mismatch(
            format!("{label} variables"),
            bank.d,
            series.n_vars(),
        ));
    }
    if series.is_empty() {
        return Err(TcslError::empty(label.to_string()));
    }
    if !series.values().as_slice().iter().all(|x| x.is_finite()) {
        return Err(TcslError::non_finite(label.to_string()));
    }
    Ok(())
}

/// Transforms one series into its `D_repr`-dimensional representation via
/// the fused streaming kernel.
///
/// Dimension mismatches, empty series and non-finite samples are request
/// errors, not panics.
pub fn transform_series(bank: &ShapeletBank, series: &TimeSeries) -> TcslResult<Vec<f32>> {
    check_series(bank, series, "series")?;
    Ok(transform_series_unchecked(bank, series))
}

/// [`transform_series`] without the request validation — the training and
/// benchmark hot paths call this on data they already validated. A
/// mismatched series is an internal invariant violation here (panics).
pub fn transform_series_unchecked(bank: &ShapeletBank, series: &TimeSeries) -> Vec<f32> {
    assert_eq!(
        series.n_vars(),
        bank.d,
        "series has {} variables, bank was built for {}",
        series.n_vars(),
        bank.d
    );
    // The serving-path unit of work: one series in, one feature row out.
    // Host-class latency distribution; a disabled timer never reads the
    // clock.
    let _t = tcsl_obs::hist::TRANSFORM_SERIES_NS.start_timer();
    let mut features = Vec::with_capacity(bank.repr_dim());
    // The per-scale window state (padded buffer + prefix-sum norms) is
    // shared between the measures of one scale.
    let mut cached: Option<ScaleWindows> = None;
    // A quantized bank pools through the half-width tap storage; the f32
    // repack is never built.
    if let Some(qps) = bank.quantized() {
        for (gi, g) in bank.groups().iter().enumerate() {
            if !cached
                .as_ref()
                .is_some_and(|sw| sw.matches(g.len, g.stride))
            {
                cached = Some(ScaleWindows::new(series.values(), g.len, g.stride));
            }
            #[allow(clippy::disallowed_methods)] // populated on the previous line
            let sw = cached.as_ref().expect("just populated");
            let (pooled, _args) = pool_measure_quant(sw, g.measure, &qps[gi]);
            features.extend_from_slice(&pooled);
        }
        return features;
    }
    let pre = bank.precomputed();
    for (gi, g) in bank.groups().iter().enumerate() {
        if !cached
            .as_ref()
            .is_some_and(|sw| sw.matches(g.len, g.stride))
        {
            cached = Some(ScaleWindows::new(series.values(), g.len, g.stride));
        }
        #[allow(clippy::disallowed_methods)] // populated on the previous line
        let sw = cached.as_ref().expect("just populated");
        let (pooled, _args) = pool_group(sw, g, &pre[gi]);
        features.extend_from_slice(&pooled);
    }
    features
}

/// [`transform_series`] via the unfold-based reference path: materializes
/// the window matrix per scale and scores it with
/// [`Measure::score_matrix`](crate::Measure::score_matrix). Kept as the
/// oracle the fused kernel must agree with, and as the "before" side of the
/// transform benchmark.
pub fn transform_series_oracle(bank: &ShapeletBank, series: &TimeSeries) -> Vec<f32> {
    assert_eq!(
        series.n_vars(),
        bank.d,
        "series has {} variables, bank was built for {}",
        series.n_vars(),
        bank.d
    );
    let mut features = Vec::with_capacity(bank.repr_dim());
    // Window matrices are shared between the measures of one scale.
    let mut cached: Option<(usize, Tensor)> = None;
    for g in bank.groups() {
        if cached.as_ref().is_none_or(|(len, _)| *len != g.len) {
            cached = Some((g.len, windows_for(series.values(), g.len, g.stride)));
        }
        #[allow(clippy::disallowed_methods)] // populated on the previous line
        let windows = &cached.as_ref().expect("just populated").1;
        let scores = g.measure.score_matrix(windows, &g.shapelets);
        let (pooled, _args) = g.measure.pool(&scores);
        features.extend_from_slice(pooled.as_slice());
    }
    features
}

/// Transforms a whole dataset into an `(N, D_repr)` feature matrix,
/// parallel over series on the persistent pool. The bank-side
/// precomputation is forced once up front so the pool workers share it
/// instead of racing to build it.
pub fn transform_dataset(bank: &ShapeletBank, ds: &Dataset) -> TcslResult<Tensor> {
    if ds.is_empty() {
        return Err(TcslError::empty(format!("dataset {}", ds.name)));
    }
    // Validate every series up front so the parallel fan-out below only
    // ever sees clean data (worker panics are internal bugs, not inputs).
    for i in 0..ds.len() {
        check_series(bank, ds.series(i), &format!("series {i}"))?;
    }
    Ok(transform_dataset_unchecked(bank, ds))
}

/// [`transform_dataset`] without the request validation — for data the
/// caller already validated (training loops, benchmarks).
pub fn transform_dataset_unchecked(bank: &ShapeletBank, ds: &Dataset) -> Tensor {
    let dim = bank.repr_dim();
    let _ = bank.precomputed();
    let rows = parallel_map(ds.len(), |i| transform_series_unchecked(bank, ds.series(i)));
    let mut out = Tensor::zeros([ds.len(), dim]);
    for (i, row) in rows.into_iter().enumerate() {
        out.row_mut(i).copy_from_slice(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShapeletConfig;
    use crate::measure::Measure;
    use tcsl_tensor::rng::seeded;

    fn small_bank(d: usize) -> ShapeletBank {
        let cfg = ShapeletConfig {
            lengths: vec![3, 5],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, d);
        bank.randomize(&mut seeded(1));
        bank
    }

    #[test]
    fn feature_vector_has_bank_dimension() {
        let bank = small_bank(2);
        let s = TimeSeries::multivariate(vec![vec![0.0; 16], vec![1.0; 16]]);
        let f = transform_series(&bank, &s).unwrap();
        assert_eq!(f.len(), bank.repr_dim());
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn exact_shapelet_occurrence_gives_zero_euclidean() {
        // Plant group-0 shapelet 0 into a noise-free series; the euclidean
        // feature must be ~0 and cosine ~1.
        let bank = small_bank(1);
        let g0 = &bank.groups()[0];
        let planted = g0.shapelet(0, 1); // (1, 3)
        let mut vals = vec![5.0f32; 12];
        vals[4..7].copy_from_slice(planted.as_slice());
        let s = TimeSeries::univariate(vals);
        let f = transform_series(&bank, &s).unwrap();
        // Column 0 = group 0 (euclidean, len 3), shapelet 0.
        assert!(f[0] < 1e-3, "euclidean feature should be ~0, got {}", f[0]);
    }

    #[test]
    fn fused_agrees_with_oracle_path() {
        let bank = small_bank(2);
        let mut rng = seeded(8);
        for t in [2usize, 7, 30, 64] {
            let vals = Tensor::randn([2, t], &mut rng);
            let s =
                TimeSeries::multivariate((0..2).map(|v| vals.row(v).to_vec()).collect::<Vec<_>>());
            let fast = transform_series(&bank, &s).unwrap();
            let slow = transform_series_oracle(&bank, &s);
            assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-4, "T={t}: fused {a} vs oracle {b}");
            }
        }
    }

    #[test]
    fn short_series_are_padded_not_rejected() {
        let bank = small_bank(1);
        let s = TimeSeries::univariate(vec![1.0, 2.0]); // shorter than len 3 and 5
        let f = transform_series(&bank, &s).unwrap();
        assert_eq!(f.len(), bank.repr_dim());
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn dataset_transform_matches_per_series() {
        let bank = small_bank(1);
        let series: Vec<TimeSeries> = (0..5)
            .map(|i| {
                TimeSeries::univariate((0..20).map(|t| ((t + i) as f32 * 0.3).sin()).collect())
            })
            .collect();
        let ds = Dataset::unlabeled("x", series);
        let m = transform_dataset(&bank, &ds).unwrap();
        assert_eq!(m.rows(), 5);
        for i in 0..5 {
            let f = transform_series(&bank, ds.series(i)).unwrap();
            assert_eq!(m.row(i), &f[..]);
        }
    }

    #[test]
    fn features_are_length_invariant_dimension() {
        // Different-length series map to the same feature space — the
        // property the unified pipeline exploits.
        let bank = small_bank(1);
        let a = transform_series(&bank, &TimeSeries::univariate(vec![0.5; 10])).unwrap();
        let b = transform_series(&bank, &TimeSeries::univariate(vec![0.5; 50])).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn variable_mismatch_is_a_shape_error() {
        let bank = small_bank(2);
        let err = transform_series(&bank, &TimeSeries::univariate(vec![0.0; 10])).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::ShapeMismatch);
        assert!(err.to_string().contains("expected 2, got 1"), "{err}");
    }

    #[test]
    fn non_finite_series_is_a_typed_error() {
        let bank = small_bank(1);
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = transform_series(&bank, &TimeSeries::univariate(vec![0.0, poison, 1.0]))
                .unwrap_err();
            assert_eq!(err.class(), tcsl_error::ErrorClass::NonFiniteInput);
        }
    }

    #[test]
    fn dataset_transform_reports_the_offending_series() {
        let bank = small_bank(1);
        let ds = Dataset::unlabeled(
            "x",
            vec![
                TimeSeries::univariate(vec![1.0; 8]),
                TimeSeries::univariate(vec![1.0, f32::NAN, 3.0]),
            ],
        );
        let err = transform_dataset(&bank, &ds).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::NonFiniteInput);
        assert!(err.to_string().contains("series 1"), "{err}");
    }
}

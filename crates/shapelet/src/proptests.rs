//! Property tests: fused-kernel/oracle agreement, fast-path/diff-path
//! agreement and measure axioms.

use crate::bank::ShapeletBank;
use crate::config::ShapeletConfig;
use crate::diff_transform::oracle::diff_features_oracle;
use crate::diff_transform::{bind_trainable, diff_features};
use crate::fused::{pool_group_blocked, pool_group_fused, ScaleWindows};
use crate::measure::Measure;
use crate::transform::{transform_series, transform_series_oracle, windows_for};
use proptest::prelude::*;
use tcsl_autodiff::Graph;
use tcsl_data::TimeSeries;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

fn arb_setup() -> impl Strategy<Value = (ShapeletBank, TimeSeries)> {
    (1usize..3, 8usize..24, 0u64..1000).prop_map(|(d, t, seed)| {
        let mut rng = seeded(seed);
        let cfg = ShapeletConfig {
            lengths: vec![3, 5],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, d);
        bank.randomize(&mut rng);
        let series = TimeSeries::new(Tensor::randn([d, t], &mut rng));
        (bank, series)
    })
}

/// Wider shape coverage for the fused-kernel properties: random variable
/// count, series length (including series *shorter* than the shapelets, the
/// padding edge case), shapelet length and stride, all measures.
fn arb_fused_setup() -> impl Strategy<Value = (ShapeletBank, TimeSeries)> {
    (1usize..4, 2usize..48, 2usize..10, 1usize..4, 0u64..1000).prop_map(
        |(d, t, len, stride, seed)| {
            let mut rng = seeded(seed);
            let cfg = ShapeletConfig {
                lengths: vec![len],
                k_per_group: 3,
                measures: Measure::ALL.to_vec(),
                stride,
            };
            let mut bank = ShapeletBank::new(&cfg, d);
            bank.randomize(&mut rng);
            let series = TimeSeries::new(Tensor::randn([d, t], &mut rng));
            (bank, series)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fast_and_diff_paths_agree((bank, series) in arb_setup()) {
        let fast = transform_series(&bank, &series).unwrap();
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &bank);
        let feats = diff_features(&mut g, &bank, &bound, series.values());
        let slow = g.value(feats);
        for (i, (&f, &s)) in fast.iter().zip(slow.as_slice()).enumerate() {
            prop_assert!((f - s).abs() < 1e-3, "feature {}: {} vs {}", i, f, s);
        }
    }

    #[test]
    fn euclidean_features_are_nonnegative((bank, series) in arb_setup()) {
        let feats = transform_series(&bank, &series).unwrap();
        for (col, &f) in feats.iter().enumerate() {
            let (gi, _) = bank.feature_to_shapelet(col).unwrap();
            if bank.groups()[gi].measure == Measure::Euclidean {
                prop_assert!(f >= 0.0, "negative euclidean feature {}", f);
            }
            if bank.groups()[gi].measure == Measure::Cosine {
                prop_assert!((-1.0001..=1.0001).contains(&f), "cosine out of range {}", f);
            }
        }
    }

    #[test]
    fn transform_is_deterministic((bank, series) in arb_setup()) {
        let a = transform_series(&bank, &series).unwrap();
        let b = transform_series(&bank, &series).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn match_scores_equal_features((bank, series) in arb_setup()) {
        let feats = transform_series(&bank, &series).unwrap();
        for col in (0..bank.repr_dim()).step_by(5) {
            let m = crate::matching::best_match_for_feature(&bank, col, &series).unwrap();
            prop_assert!((m.score - feats[col]).abs() < 1e-4);
        }
    }

    #[test]
    fn fused_transform_agrees_with_oracle((bank, series) in arb_fused_setup()) {
        let fast = transform_series(&bank, &series).unwrap();
        let slow = transform_series_oracle(&bank, &series);
        prop_assert_eq!(fast.len(), slow.len());
        for (i, (&f, &s)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!((f - s).abs() < 1e-4, "feature {}: fused {} vs oracle {}", i, f, s);
        }
    }

    #[test]
    fn fused_engines_agree_with_oracle_pooling((bank, series) in arb_fused_setup()) {
        // Both streaming engines must reproduce the oracle's pooled score
        // (≤1e-4) and its exact best-window index, for every measure.
        let pre = bank.precomputed();
        for (gi, g) in bank.groups().iter().enumerate() {
            let sw = ScaleWindows::new(series.values(), g.len, g.stride);
            let windows = windows_for(series.values(), g.len, g.stride);
            let scores = g.measure.score_matrix(&windows, &g.shapelets);
            let (opooled, oargs) = g.measure.pool(&scores);
            let fused = pool_group_fused(&sw, g.measure, &pre[gi]);
            let blocked = pool_group_blocked(&sw, g.measure, &pre[gi]);
            for (pooled, args) in [&fused, &blocked] {
                for k in 0..g.k() {
                    prop_assert!(
                        (pooled[k] - opooled.as_slice()[k]).abs() < 1e-4,
                        "{:?} k={}: {} vs oracle {}", g.measure, k, pooled[k], opooled.as_slice()[k]
                    );
                    prop_assert_eq!(args[k], oargs[k], "{:?} k={} argmin", g.measure, k);
                }
            }
        }
    }

    #[test]
    fn fused_diff_grads_match_oracle_grads((bank, series) in arb_fused_setup()) {
        // The custom op's analytic backward must reproduce the gradients
        // defined by the oracle graph's composed backward rules, for any
        // shape, stride and measure — same loss, same parameters.
        let grads_of = |use_oracle: bool| {
            let mut g = Graph::new();
            let bound = bind_trainable(&mut g, &bank);
            let feats = if use_oracle {
                diff_features_oracle(&mut g, &bank, &bound, series.values())
            } else {
                diff_features(&mut g, &bank, &bound, series.values())
            };
            let sq = g.square(feats);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            bound
                .group_vars
                .iter()
                .map(|&id| grads.get(id).cloned())
                .collect::<Vec<_>>()
        };
        let fused = grads_of(false);
        let oracle = grads_of(true);
        for (gi, (f, o)) in fused.iter().zip(&oracle).enumerate() {
            let (f, o) = (f.as_ref().unwrap(), o.as_ref().unwrap());
            for (i, (&fv, &ov)) in f.as_slice().iter().zip(o.as_slice()).enumerate() {
                prop_assert!(
                    (fv - ov).abs() < 1e-3,
                    "group {} grad {}: fused {} vs oracle {}", gi, i, fv, ov
                );
            }
        }
    }

    #[test]
    fn best_match_is_the_pooled_window((bank, series) in arb_fused_setup()) {
        // Localization must point at exactly the window whose score the
        // transform reported — same index, bit-identical score.
        let pre = bank.precomputed();
        for (gi, g) in bank.groups().iter().enumerate() {
            let sw = ScaleWindows::new(series.values(), g.len, g.stride);
            let (pooled, args) = crate::fused::pool_group(&sw, g, &pre[gi]);
            for k in 0..g.k() {
                let m = crate::matching::best_match(&bank, gi, k, &series);
                prop_assert_eq!(m.start, args[k] * g.stride);
                prop_assert_eq!(m.score, pooled[k]);
            }
        }
    }
}

//! Property tests: fast-path/diff-path agreement and measure axioms.

use crate::bank::ShapeletBank;
use crate::config::ShapeletConfig;
use crate::diff_transform::{bind_trainable, diff_features};
use crate::measure::Measure;
use crate::transform::transform_series;
use proptest::prelude::*;
use tcsl_autodiff::Graph;
use tcsl_data::TimeSeries;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

fn arb_setup() -> impl Strategy<Value = (ShapeletBank, TimeSeries)> {
    (1usize..3, 8usize..24, 0u64..1000).prop_map(|(d, t, seed)| {
        let mut rng = seeded(seed);
        let cfg = ShapeletConfig {
            lengths: vec![3, 5],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, d);
        bank.randomize(&mut rng);
        let series = TimeSeries::new(Tensor::randn([d, t], &mut rng));
        (bank, series)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fast_and_diff_paths_agree((bank, series) in arb_setup()) {
        let fast = transform_series(&bank, &series);
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &bank);
        let feats = diff_features(&mut g, &bank, &bound, series.values());
        let slow = g.value(feats);
        for (i, (&f, &s)) in fast.iter().zip(slow.as_slice()).enumerate() {
            prop_assert!((f - s).abs() < 1e-3, "feature {}: {} vs {}", i, f, s);
        }
    }

    #[test]
    fn euclidean_features_are_nonnegative((bank, series) in arb_setup()) {
        let feats = transform_series(&bank, &series);
        for (col, &f) in feats.iter().enumerate() {
            let (gi, _) = bank.feature_to_shapelet(col);
            if bank.groups()[gi].measure == Measure::Euclidean {
                prop_assert!(f >= 0.0, "negative euclidean feature {}", f);
            }
            if bank.groups()[gi].measure == Measure::Cosine {
                prop_assert!((-1.0001..=1.0001).contains(&f), "cosine out of range {}", f);
            }
        }
    }

    #[test]
    fn transform_is_deterministic((bank, series) in arb_setup()) {
        let a = transform_series(&bank, &series);
        let b = transform_series(&bank, &series);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn match_scores_equal_features((bank, series) in arb_setup()) {
        let feats = transform_series(&bank, &series);
        for col in (0..bank.repr_dim()).step_by(5) {
            let m = crate::matching::best_match_for_feature(&bank, col, &series);
            prop_assert!((m.score - feats[col]).abs() < 1e-4);
        }
    }
}

//! Property tests: fused-kernel/oracle agreement, fast-path/diff-path
//! agreement, measure axioms, and the quantized-bank error budget.

use crate::bank::ShapeletBank;
use crate::config::ShapeletConfig;
use crate::diff_transform::oracle::diff_features_oracle;
use crate::diff_transform::{bind_trainable, diff_features};
use crate::fused::{pool_group_blocked, pool_group_fused, ScaleWindows};
use crate::measure::Measure;
use crate::transform::{transform_dataset, transform_series, transform_series_oracle, windows_for};
use proptest::prelude::*;
use tcsl_autodiff::Graph;
use tcsl_data::{Dataset, TimeSeries};
use tcsl_tensor::quant::QuantScheme;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

fn arb_setup() -> impl Strategy<Value = (ShapeletBank, TimeSeries)> {
    (1usize..3, 8usize..24, 0u64..1000).prop_map(|(d, t, seed)| {
        let mut rng = seeded(seed);
        let cfg = ShapeletConfig {
            lengths: vec![3, 5],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, d);
        bank.randomize(&mut rng);
        let series = TimeSeries::new(Tensor::randn([d, t], &mut rng));
        (bank, series)
    })
}

/// Wider shape coverage for the fused-kernel properties: random variable
/// count, series length (including series *shorter* than the shapelets, the
/// padding edge case), shapelet length and stride, all measures.
fn arb_fused_setup() -> impl Strategy<Value = (ShapeletBank, TimeSeries)> {
    (1usize..4, 2usize..48, 2usize..10, 1usize..4, 0u64..1000).prop_map(
        |(d, t, len, stride, seed)| {
            let mut rng = seeded(seed);
            let cfg = ShapeletConfig {
                lengths: vec![len],
                k_per_group: 3,
                measures: Measure::ALL.to_vec(),
                stride,
            };
            let mut bank = ShapeletBank::new(&cfg, d);
            bank.randomize(&mut rng);
            let series = TimeSeries::new(Tensor::randn([d, t], &mut rng));
            (bank, series)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fast_and_diff_paths_agree((bank, series) in arb_setup()) {
        let fast = transform_series(&bank, &series).unwrap();
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &bank);
        let feats = diff_features(&mut g, &bank, &bound, series.values());
        let slow = g.value(feats);
        for (i, (&f, &s)) in fast.iter().zip(slow.as_slice()).enumerate() {
            prop_assert!((f - s).abs() < 1e-3, "feature {}: {} vs {}", i, f, s);
        }
    }

    #[test]
    fn euclidean_features_are_nonnegative((bank, series) in arb_setup()) {
        let feats = transform_series(&bank, &series).unwrap();
        for (col, &f) in feats.iter().enumerate() {
            let (gi, _) = bank.feature_to_shapelet(col).unwrap();
            if bank.groups()[gi].measure == Measure::Euclidean {
                prop_assert!(f >= 0.0, "negative euclidean feature {}", f);
            }
            if bank.groups()[gi].measure == Measure::Cosine {
                prop_assert!((-1.0001..=1.0001).contains(&f), "cosine out of range {}", f);
            }
        }
    }

    #[test]
    fn transform_is_deterministic((bank, series) in arb_setup()) {
        let a = transform_series(&bank, &series).unwrap();
        let b = transform_series(&bank, &series).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn match_scores_equal_features((bank, series) in arb_setup()) {
        let feats = transform_series(&bank, &series).unwrap();
        for col in (0..bank.repr_dim()).step_by(5) {
            let m = crate::matching::best_match_for_feature(&bank, col, &series).unwrap();
            prop_assert!((m.score - feats[col]).abs() < 1e-4);
        }
    }

    #[test]
    fn fused_transform_agrees_with_oracle((bank, series) in arb_fused_setup()) {
        let fast = transform_series(&bank, &series).unwrap();
        let slow = transform_series_oracle(&bank, &series);
        prop_assert_eq!(fast.len(), slow.len());
        for (i, (&f, &s)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!((f - s).abs() < 1e-4, "feature {}: fused {} vs oracle {}", i, f, s);
        }
    }

    #[test]
    fn fused_engines_agree_with_oracle_pooling((bank, series) in arb_fused_setup()) {
        // Both streaming engines must reproduce the oracle's pooled score
        // (≤1e-4) and its exact best-window index, for every measure.
        let pre = bank.precomputed();
        for (gi, g) in bank.groups().iter().enumerate() {
            let sw = ScaleWindows::new(series.values(), g.len, g.stride);
            let windows = windows_for(series.values(), g.len, g.stride);
            let scores = g.measure.score_matrix(&windows, &g.shapelets);
            let (opooled, oargs) = g.measure.pool(&scores);
            let fused = pool_group_fused(&sw, g.measure, &pre[gi]);
            let blocked = pool_group_blocked(&sw, g.measure, &pre[gi]);
            for (pooled, args) in [&fused, &blocked] {
                for k in 0..g.k() {
                    prop_assert!(
                        (pooled[k] - opooled.as_slice()[k]).abs() < 1e-4,
                        "{:?} k={}: {} vs oracle {}", g.measure, k, pooled[k], opooled.as_slice()[k]
                    );
                    prop_assert_eq!(args[k], oargs[k], "{:?} k={} argmin", g.measure, k);
                }
            }
        }
    }

    #[test]
    fn fused_diff_grads_match_oracle_grads((bank, series) in arb_fused_setup()) {
        // The custom op's analytic backward must reproduce the gradients
        // defined by the oracle graph's composed backward rules, for any
        // shape, stride and measure — same loss, same parameters.
        let grads_of = |use_oracle: bool| {
            let mut g = Graph::new();
            let bound = bind_trainable(&mut g, &bank);
            let feats = if use_oracle {
                diff_features_oracle(&mut g, &bank, &bound, series.values())
            } else {
                diff_features(&mut g, &bank, &bound, series.values())
            };
            let sq = g.square(feats);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            bound
                .group_vars
                .iter()
                .map(|&id| grads.get(id).cloned())
                .collect::<Vec<_>>()
        };
        let fused = grads_of(false);
        let oracle = grads_of(true);
        for (gi, (f, o)) in fused.iter().zip(&oracle).enumerate() {
            let (f, o) = (f.as_ref().unwrap(), o.as_ref().unwrap());
            for (i, (&fv, &ov)) in f.as_slice().iter().zip(o.as_slice()).enumerate() {
                prop_assert!(
                    (fv - ov).abs() < 1e-3,
                    "group {} grad {}: fused {} vs oracle {}", gi, i, fv, ov
                );
            }
        }
    }

    #[test]
    fn quantized_transform_stays_within_error_budget((bank, series) in arb_fused_setup()) {
        // The quantized transform must stay within an *analytically derived*
        // tolerance of the full-precision transform on the original bank.
        // Per shapelet row, ε = max measured tap perturbation; per window,
        // |Δ(w·s)| ≤ ‖w‖₁·ε ≤ width·M·ε with M = max |series value|, and
        // min/max pooling contracts: |pool f − pool g| ≤ max |f − g|.
        let full = transform_series(&bank, &series).unwrap();
        let m_series = series
            .values()
            .as_slice()
            .iter()
            .fold(0f32, |a, &x| a.max(x.abs()));
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            let mut qb = bank.clone();
            qb.quantize(scheme).unwrap();
            let qfeats = transform_series(&qb, &series).unwrap();
            for (col, (&f, &q)) in full.iter().zip(&qfeats).enumerate() {
                let (gi, k) = bank.feature_to_shapelet(col).unwrap();
                let g = &bank.groups()[gi];
                let orig = g.shapelets.row(k);
                let deq = qb.groups()[gi].shapelets.row(k);
                let eps = orig
                    .iter()
                    .zip(deq)
                    .map(|(&a, &b)| (a - b).abs())
                    .fold(0f32, f32::max);
                let a_max = orig.iter().fold(0f32, |a, &x| a.max(x.abs()));
                let s_norm = orig.iter().map(|&x| x * x).sum::<f32>().sqrt();
                let width = (bank.d * g.len) as f32;
                // Additive slack for f32 kernel rounding (both paths
                // accumulate in f32 with different association).
                let slack = 1e-4 * (1.0 + f.abs());
                let tol = match g.measure {
                    // |√a − √b| ≤ √|a − b|; the inner /width cancels one
                    // width factor of the Δ bounds.
                    Measure::Euclidean => {
                        (2.0 * m_series * eps + 2.0 * a_max * eps + eps * eps).sqrt() + slack
                    }
                    // |cos(w, s_q) − cos(w, s)| ≤ 2·‖Δs‖ / ‖s‖.
                    Measure::Cosine => {
                        2.0 * width.sqrt() * eps / s_norm.max(1e-6) + slack
                    }
                    Measure::CrossCorrelation => m_series * eps + slack,
                };
                prop_assert!(
                    (f - q).abs() <= tol,
                    "{scheme:?} col {col} ({:?}): quant {q} vs full {f}, |Δ|={} > tol {tol}",
                    g.measure, (f - q).abs()
                );
            }
        }
    }

    #[test]
    fn quantized_transform_localizes_planted_motifs(
        (len, t, seed) in (4usize..10, 40usize..80, 0u64..1000)
    ) {
        // Argmin agreement on data with a planted ground truth: the exact
        // copy of a shapelet buried in a hostile background must be located
        // at the same window by the f32 and both quantized banks.
        let mut rng = seeded(seed);
        let cfg = ShapeletConfig {
            lengths: vec![len],
            k_per_group: 1,
            measures: vec![Measure::Euclidean],
            stride: 1,
        };
        let mut bank = ShapeletBank::new(&cfg, 1);
        bank.randomize(&mut rng);
        let pos = (seed as usize) % (t - len);
        let planted: Vec<f32> = bank.groups()[0].shapelets.row(0).to_vec();
        let mut vals = vec![9.0f32; t];
        vals[pos..pos + len].copy_from_slice(&planted);
        let series = TimeSeries::univariate(vals);
        let full = crate::matching::best_match(&bank, 0, 0, &series);
        prop_assert_eq!(full.start, pos);
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            let mut qb = bank.clone();
            qb.quantize(scheme).unwrap();
            let m = crate::matching::best_match(&qb, 0, 0, &series);
            prop_assert_eq!(m.start, pos, "{:?} seed {}", scheme, seed);
            prop_assert!(m.score < 1e-2, "{:?}: planted match score {}", scheme, m.score);
        }
    }

    #[test]
    fn quantized_batch_transform_matches_single_series(
        (bank, series) in arb_fused_setup(), n in 2usize..5
    ) {
        // Per-series independence at every precision: the (worker-pool)
        // batch transform must be bit-identical to transforming each series
        // alone, so features cannot depend on TCSL_THREADS or batch
        // composition.
        let all: Vec<TimeSeries> = (0..n)
            .map(|i| {
                let mut rng = seeded(i as u64 ^ 0xD15);
                TimeSeries::new(Tensor::randn(series.values().shape().clone(), &mut rng))
            })
            .collect();
        let ds = Dataset::unlabeled("quant-batch", all.clone());
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            let mut qb = bank.clone();
            qb.quantize(scheme).unwrap();
            let batch = transform_dataset(&qb, &ds).unwrap();
            for (i, s) in all.iter().enumerate() {
                let one = transform_series(&qb, s).unwrap();
                prop_assert_eq!(
                    batch.row(i), one.as_slice(),
                    "{:?} series {} batch/single mismatch", scheme, i
                );
            }
        }
    }

    #[test]
    fn best_match_is_the_pooled_window((bank, series) in arb_fused_setup()) {
        // Localization must point at exactly the window whose score the
        // transform reported — same index, bit-identical score.
        let pre = bank.precomputed();
        for (gi, g) in bank.groups().iter().enumerate() {
            let sw = ScaleWindows::new(series.values(), g.len, g.stride);
            let (pooled, args) = crate::fused::pool_group(&sw, g, &pre[gi]);
            for k in 0..g.k() {
                let m = crate::matching::best_match(&bank, gi, k, &series);
                prop_assert_eq!(m.start, args[k] * g.stride);
                prop_assert_eq!(m.score, pooled[k]);
            }
        }
    }
}

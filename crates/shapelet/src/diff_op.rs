//! `ShapeletDistanceOp` — the fused shapelet-transform kernel as a custom
//! autodiff operator, so training differentiates the *same* streaming code
//! path inference runs (one kernel, two modes).
//!
//! The eager-graph formulation (kept as
//! [`crate::diff_transform::oracle`]) inserts an `(N_w × D·len)` unfolded
//! window matrix as a constant leaf per scale, per series, per worker
//! graph, per batch — the exact materialization the fused inference kernel
//! eliminated. This op instead:
//!
//! * **forward** — pools one (scale, measure) group over a shared
//!   [`ScaleWindows`] via [`pool_measure`] (streaming dots, prefix-sum
//!   window norms, bank-side tap repack from [`GroupPrecomp`]), recording
//!   the best-window index per shapelet;
//! * **backward** — routes the adjoint of each pooled feature to its best
//!   window only (the min/max-pooling subgradient) and applies the
//!   per-measure analytic rule against that one window, read straight out
//!   of the series buffer ([`window_row_into`]) — peak memory is one
//!   `D·len` scratch row, never `N_w × D·len`.
//!
//! The numerics match the oracle graph exactly, epsilon for epsilon:
//! Euclidean applies the oracle's `sqrt(· + 1e-8)` softening on top of the
//! fused kernel's `sqrt(·)` pooled value (argmin is invariant under the
//! monotone map `p ↦ √(p²+ε)`, so the recorded best window is the oracle's
//! too), cosine uses the shared `1e-12` norm floors on both sides.
//! Gradients are finite-difference checked per measure × stride and
//! property-pinned to the oracle graph's gradients in `crate::proptests`.

// Exempt from the error wall (clippy.toml) — autodiff op internals: width/lock invariants are
// construction-time guarantees, not request input.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::bank::GroupPrecomp;
use crate::fused::{pool_measure, ScaleWindows};
use crate::measure::Measure;
use tcsl_autodiff::CustomOp;
use tcsl_tensor::window::window_row_into;
use tcsl_tensor::Tensor;

/// The epsilon of the oracle graph's `sqrt_eps` on the Euclidean branch —
/// keeps the distance gradient finite at exact matches.
pub const EUCLIDEAN_SQRT_EPS: f32 = 1e-8;

/// One (scale, measure) group's pooled shapelet distances as a single tape
/// node: input `(K, D·len)` shapelets, output `(1, K)` pooled features.
///
/// The series side ([`ScaleWindows`]: padded buffer + prefix-sum window
/// norms) is captured by the op and shared — via `Arc` — across all
/// measures of a scale and across identical views of a training pair. One
/// op instance backs one graph node: `forward` stashes the best-window
/// indices for `backward` (interior mutability — the tape takes `&self`),
/// and `backward` falls back to recomputing them if the stash was already
/// consumed (e.g. a second `backward` sweep over the same tape).
pub struct ShapeletDistanceOp {
    sw: Arc<ScaleWindows>,
    measure: Measure,
    saved_args: Mutex<Option<Vec<usize>>>,
}

impl ShapeletDistanceOp {
    /// Builds the op for one group: shared series-side window state plus
    /// the group's measure.
    pub fn new(sw: Arc<ScaleWindows>, measure: Measure) -> Self {
        ShapeletDistanceOp {
            sw,
            measure,
            saved_args: Mutex::new(None),
        }
    }

    /// Pools the given shapelet rows, returning the pooled feature per
    /// shapelet and the best-window index per shapelet. Euclidean applies
    /// the oracle path's `sqrt_eps` softening to the pooled value (the
    /// argmin is unaffected — see the module docs).
    fn pool(&self, shapelets: &Tensor) -> (Vec<f32>, Vec<usize>) {
        let pre = GroupPrecomp::of(shapelets);
        let (mut pooled, args) = pool_measure(&self.sw, self.measure, &pre);
        if self.measure == Measure::Euclidean {
            for p in &mut pooled {
                *p = (*p * *p + EUCLIDEAN_SQRT_EPS).sqrt();
            }
        }
        (pooled, args)
    }
}

impl fmt::Debug for ShapeletDistanceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShapeletDistanceOp({:?}, len={}, stride={}, windows={})",
            self.measure, self.sw.len, self.sw.stride, self.sw.n
        )
    }
}

impl CustomOp for ShapeletDistanceOp {
    fn forward(&self, inputs: &[&Tensor]) -> Tensor {
        assert_eq!(inputs.len(), 1, "ShapeletDistanceOp takes one input");
        let shapelets = inputs[0];
        assert_eq!(
            shapelets.cols(),
            self.sw.padded.rows() * self.sw.len,
            "shapelet width must be D·len"
        );
        let (pooled, args) = self.pool(shapelets);
        let k = pooled.len();
        *self.saved_args.lock().expect("saved-args lock poisoned") = Some(args);
        Tensor::from_vec(pooled, [1, k])
    }

    fn backward(
        &self,
        grad_out: &Tensor,
        inputs: &[&Tensor],
        output: &Tensor,
    ) -> Vec<Option<Tensor>> {
        let shapelets = inputs[0];
        let k = shapelets.rows();
        let sw = &*self.sw;
        let len = sw.len;
        let row_w = shapelets.cols();
        let width = row_w as f32;
        let args = self
            .saved_args
            .lock()
            .expect("saved-args lock poisoned")
            .take()
            .unwrap_or_else(|| self.pool(shapelets).1);
        debug_assert_eq!(args.len(), k);

        let g = grad_out.as_slice();
        let out = output.as_slice();
        let mut grad = Tensor::zeros([k, row_w]);
        // Best-window scratch row, reused across shapelets.
        let mut wrow = vec![0.0f32; row_w];
        for kk in 0..k {
            let gk = g[kk];
            if gk == 0.0 {
                continue;
            }
            window_row_into(&sw.padded, args[kk] * sw.stride, len, &mut wrow);
            let srow = shapelets.row(kk);
            let drow = grad.row_mut(kk);
            match self.measure {
                Measure::Euclidean => {
                    // f = √(max(d², 0)/width + ε), d² = ‖w* − s‖².
                    // ∂f/∂s = (s − w*) / (width·f), gated on d² > 0 (the
                    // oracle's relu subgradient); d² > 0 ⟺ f² > ε.
                    let f = out[kk];
                    if f * f > EUCLIDEAN_SQRT_EPS {
                        let scale = gk / (width * f);
                        for (d, (&s, &w)) in drow.iter_mut().zip(srow.iter().zip(wrow.iter())) {
                            *d = scale * (s - w);
                        }
                    }
                }
                Measure::Cosine => {
                    // f = ŵ*·ŝ with ŵ = w/√(‖w‖²+1e-12), ŝ = s/n,
                    // n = √(‖s‖²+1e-12). ∂f/∂s = (ŵ* − ŝ·f)/n — the
                    // tangent-space gradient of the oracle's row_normalize.
                    let inv_w = sw.inv_norms[args[kk]];
                    let s_sq: f32 = srow.iter().map(|&x| x * x).sum();
                    let n = (s_sq + 1e-12).sqrt();
                    let f = out[kk];
                    let scale = gk / n;
                    for (d, (&s, &w)) in drow.iter_mut().zip(srow.iter().zip(wrow.iter())) {
                        *d = scale * (w * inv_w - (s / n) * f);
                    }
                }
                Measure::CrossCorrelation => {
                    // f = (w*·s)/width → ∂f/∂s = w*/width.
                    let scale = gk / width;
                    for (d, &w) in drow.iter_mut().zip(wrow.iter()) {
                        *d = scale * w;
                    }
                }
            }
        }
        vec![Some(grad)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_autodiff::gradcheck::gradcheck;
    use tcsl_autodiff::Graph;
    use tcsl_tensor::rng::seeded;

    /// Finite-difference check of the analytic backward, one measure and
    /// stride at a time, through a square + mean head (so every feature
    /// contributes a distinct adjoint).
    fn check_measure_stride(measure: Measure, stride: usize, seed: u64) {
        let mut rng = seeded(seed);
        let d = 1 + (seed as usize) % 2;
        let len = 4;
        let series = Tensor::randn([d, 19], &mut rng);
        let shapelets = Tensor::randn([3, d * len], &mut rng).scale(0.6);
        let sw = Arc::new(ScaleWindows::new(&series, len, stride));
        let report = gradcheck(&[shapelets], 1e-3, |g, xs| {
            let s = g.param(xs[0].clone());
            let feats = g.custom(Arc::new(ShapeletDistanceOp::new(sw.clone(), measure)), &[s]);
            let sq = g.square(feats);
            let loss = g.mean_all(sq);
            (vec![s], loss)
        });
        assert!(
            report.passes(3e-2),
            "{measure:?} stride {stride}: gradcheck failed abs={} rel={}",
            report.max_abs_err,
            report.max_rel_err
        );
    }

    #[test]
    fn gradcheck_every_measure_and_stride() {
        for (i, &measure) in Measure::ALL.iter().enumerate() {
            for stride in 1..=3 {
                check_measure_stride(measure, stride, 40 + (i * 3 + stride) as u64);
            }
        }
    }

    #[test]
    fn gradcheck_on_padded_short_series() {
        // Series shorter than the scale: one zero-padded window, so the
        // arg-routing is trivial but the padding path must still have the
        // right gradient.
        for &measure in Measure::ALL.iter() {
            let mut rng = seeded(60);
            let series = Tensor::randn([1, 3], &mut rng);
            let shapelets = Tensor::randn([2, 6], &mut rng).scale(0.5);
            let sw = Arc::new(ScaleWindows::new(&series, 6, 1));
            let report = gradcheck(&[shapelets], 1e-3, |g, xs| {
                let s = g.param(xs[0].clone());
                let feats = g.custom(Arc::new(ShapeletDistanceOp::new(sw.clone(), measure)), &[s]);
                let sq = g.square(feats);
                let loss = g.mean_all(sq);
                (vec![s], loss)
            });
            assert!(
                report.passes(3e-2),
                "{measure:?} padded: abs={} rel={}",
                report.max_abs_err,
                report.max_rel_err
            );
        }
    }

    #[test]
    fn forward_output_is_one_row_per_group() {
        let mut rng = seeded(61);
        let series = Tensor::randn([2, 30], &mut rng);
        let shapelets = Tensor::randn([5, 2 * 4], &mut rng);
        let sw = Arc::new(ScaleWindows::new(&series, 4, 1));
        let mut g = Graph::new();
        let s = g.param(shapelets);
        let feats = g.custom(
            Arc::new(ShapeletDistanceOp::new(sw, Measure::Euclidean)),
            &[s],
        );
        let v = g.value(feats);
        assert_eq!(v.shape().dims(), &[1, 5]);
        assert!(v.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn second_backward_sweep_recomputes_saved_args() {
        // The first backward consumes the stashed best-window indices; a
        // second sweep over the same tape must transparently recompute
        // them and produce identical gradients.
        let mut rng = seeded(62);
        let series = Tensor::randn([1, 25], &mut rng);
        let shapelets = Tensor::randn([3, 5], &mut rng);
        let sw = Arc::new(ScaleWindows::new(&series, 5, 2));
        let mut g = Graph::new();
        let s = g.param(shapelets);
        let feats = g.custom(Arc::new(ShapeletDistanceOp::new(sw, Measure::Cosine)), &[s]);
        let sq = g.square(feats);
        let loss = g.mean_all(sq);
        let g1 = g.backward(loss);
        let g2 = g.backward(loss);
        assert_eq!(
            g1.get(s).unwrap().as_slice(),
            g2.get(s).unwrap().as_slice(),
            "recomputed args diverged from saved args"
        );
    }
}

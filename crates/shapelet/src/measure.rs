//! The (dis)similarity measures between a shapelet and a window.
//!
//! The paper's recommended configuration learns shapelets under three
//! measures simultaneously (§3, step 1): Euclidean norm, cosine similarity
//! and cross-correlation. Distances are *minimized* over windows,
//! similarities *maximized*; [`Measure::better`] abstracts the direction.

use tcsl_tensor::matmul::matmul_transb;
use tcsl_tensor::reduce::Axis;
use tcsl_tensor::Tensor;

/// A (dis)similarity measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Length-normalized Euclidean distance (dissimilarity; lower is
    /// better, pooled with `min`).
    Euclidean,
    /// Cosine similarity (higher is better, pooled with `max`).
    Cosine,
    /// Length-normalized cross-correlation, i.e. mean pointwise product
    /// (higher is better, pooled with `max`).
    CrossCorrelation,
}

impl Measure {
    /// All measures, in the bank's canonical order.
    pub const ALL: [Measure; 3] = [
        Measure::Euclidean,
        Measure::Cosine,
        Measure::CrossCorrelation,
    ];

    /// Whether larger scores indicate a better match.
    pub fn higher_is_better(self) -> bool {
        !matches!(self, Measure::Euclidean)
    }

    /// Whether `a` is a better match score than `b` under this measure.
    pub fn better(self, a: f32, b: f32) -> bool {
        if self.higher_is_better() {
            a > b
        } else {
            a < b
        }
    }

    /// Short stable name (used in feature names and model files).
    pub fn name(self) -> &'static str {
        match self {
            Measure::Euclidean => "euc",
            Measure::Cosine => "cos",
            Measure::CrossCorrelation => "xcorr",
        }
    }

    /// Parses the short name.
    pub fn parse(name: &str) -> Option<Measure> {
        match name {
            "euc" => Some(Measure::Euclidean),
            "cos" => Some(Measure::Cosine),
            "xcorr" => Some(Measure::CrossCorrelation),
            _ => None,
        }
    }

    /// Finishes a raw window·shapelet dot product into this measure's
    /// score, given the squared norms of both sides and the flattened
    /// width `D·len`. Every scoring path — the unfold-based oracle, the
    /// fused streaming kernel and the blocked tile kernel — funnels through
    /// this one function, so engines can only differ by the rounding of
    /// their inputs, never by formula.
    #[inline]
    pub fn finish(self, cross: f32, w_sq: f32, s_sq: f32, width: f32) -> f32 {
        match self {
            // d(w, s) = sqrt(max(‖w‖² − 2·w·s + ‖s‖², 0) / width)
            Measure::Euclidean => (((w_sq - 2.0 * cross + s_sq).max(0.0)) / width).sqrt(),
            // cos(w, s) = w·s / (‖w‖·‖s‖), with the same 1e-12 floor the
            // normalized-copy formulation used.
            Measure::Cosine => cross * inv_norm(w_sq) * inv_norm(s_sq),
            Measure::CrossCorrelation => cross / width,
        }
    }

    /// Score matrix `(N_w × K)` between window rows and shapelet rows, both
    /// flattened to `D·len` columns.
    ///
    /// This is the unfold-based formulation (`matmul_transb` over a
    /// materialized window matrix). The fused streaming kernel in
    /// [`crate::fused`] replaces it on the hot path; this stays as the
    /// reference oracle the fused kernel is property-tested against, and
    /// as the naive baseline in the benchmark trajectory.
    pub fn score_matrix(self, windows: &Tensor, shapelets: &Tensor) -> Tensor {
        self.score_matrix_with(windows, shapelets, &row_sq_norms(shapelets))
    }

    /// [`Self::score_matrix`] with the shapelet-side squared row norms
    /// supplied by the caller (e.g. from
    /// `ShapeletBank::precomputed`), so they are not re-derived per series.
    /// Euclidean and cosine share the single window-side row-norm pass.
    pub fn score_matrix_with(self, windows: &Tensor, shapelets: &Tensor, sn: &[f32]) -> Tensor {
        let width = windows.cols() as f32;
        assert_eq!(
            windows.cols(),
            shapelets.cols(),
            "window width {} != shapelet width {}",
            windows.cols(),
            shapelets.cols()
        );
        assert_eq!(sn.len(), shapelets.rows(), "shapelet norm count mismatch");
        let mut out = matmul_transb(windows, shapelets);
        match self {
            Measure::Euclidean | Measure::Cosine => {
                let wn = row_sq_norms(windows);
                for i in 0..wn.len() {
                    let wni = wn[i];
                    for (j, x) in out.row_mut(i).iter_mut().enumerate() {
                        *x = self.finish(*x, wni, sn[j], width);
                    }
                }
                out
            }
            Measure::CrossCorrelation => out.scale(1.0 / width),
        }
    }

    /// Pools the score matrix over windows: one feature per shapelet, plus
    /// the index of the best-matching window.
    pub fn pool(self, scores: &Tensor) -> (Tensor, Vec<usize>) {
        if self.higher_is_better() {
            tcsl_tensor::reduce::max_axis(scores, Axis::Rows)
        } else {
            tcsl_tensor::reduce::min_axis(scores, Axis::Rows)
        }
    }
}

/// `1 / √(x + 1e-12)` — the epsilon-floored inverse norm shared by the
/// cosine formulations.
#[inline]
fn inv_norm(sq: f32) -> f32 {
    1.0 / (sq + 1e-12).sqrt()
}

/// Squared Euclidean norm of every row.
pub(crate) fn row_sq_norms(m: &Tensor) -> Vec<f32> {
    (0..m.rows())
        .map(|i| m.row(i).iter().map(|&x| x * x).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows() -> Tensor {
        Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, -1.0, 0.0], [3, 2])
    }

    #[test]
    fn euclidean_exact_match_is_zero() {
        let w = windows();
        let s = Tensor::from_vec(vec![1.0, 0.0], [1, 2]);
        let scores = Measure::Euclidean.score_matrix(&w, &s);
        assert!(scores.at2(0, 0).abs() < 1e-6);
        assert!(scores.at2(2, 0) > 0.0);
        let (pooled, args) = Measure::Euclidean.pool(&scores);
        assert!(pooled.as_slice()[0].abs() < 1e-6);
        assert_eq!(args, vec![0]);
    }

    #[test]
    fn euclidean_is_length_normalized() {
        // Same per-sample deviation at two widths → same normalized distance.
        let w2 = Tensor::from_vec(vec![0.0, 0.0], [1, 2]);
        let s2 = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        let w4 = Tensor::from_vec(vec![0.0; 4], [1, 4]);
        let s4 = Tensor::from_vec(vec![1.0; 4], [1, 4]);
        let d2 = Measure::Euclidean.score_matrix(&w2, &s2).item();
        let d4 = Measure::Euclidean.score_matrix(&w4, &s4).item();
        assert!((d2 - d4).abs() < 1e-6);
        assert!((d2 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_bounds_and_direction() {
        let w = windows();
        let s = Tensor::from_vec(vec![2.0, 0.0], [1, 2]); // same direction as row 0
        let scores = Measure::Cosine.score_matrix(&w, &s);
        assert!((scores.at2(0, 0) - 1.0).abs() < 1e-5);
        assert!((scores.at2(2, 0) + 1.0).abs() < 1e-5);
        let (pooled, args) = Measure::Cosine.pool(&scores);
        assert!((pooled.as_slice()[0] - 1.0).abs() < 1e-5);
        assert_eq!(args, vec![0]);
    }

    #[test]
    fn cross_correlation_scales_with_amplitude() {
        let w = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        let s1 = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        let s2 = Tensor::from_vec(vec![2.0, 2.0], [1, 2]);
        let a = Measure::CrossCorrelation.score_matrix(&w, &s1).item();
        let b = Measure::CrossCorrelation.score_matrix(&w, &s2).item();
        assert!((a - 1.0).abs() < 1e-6);
        assert!((b - 2.0).abs() < 1e-6);
    }

    #[test]
    fn better_respects_direction() {
        assert!(Measure::Euclidean.better(0.1, 0.5));
        assert!(Measure::Cosine.better(0.9, 0.1));
        assert!(Measure::CrossCorrelation.better(2.0, 1.0));
    }

    #[test]
    fn names_round_trip() {
        for m in Measure::ALL {
            assert_eq!(Measure::parse(m.name()), Some(m));
        }
        assert_eq!(Measure::parse("nope"), None);
    }
}

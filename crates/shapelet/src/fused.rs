//! The fused streaming shapelet-transform kernel.
//!
//! The unfold-based formulation ([`Measure::score_matrix`]) materializes an
//! `(N_w × D·len)` window matrix per scale — for stride-1 windows a ~`len`×
//! memory blowup — then re-derives shapelet norms per series. This module
//! replaces it on the hot path:
//!
//! * **Zero-materialization windows** — per-shapelet dot products read the
//!   overlapping windows directly out of the original contiguous series
//!   buffer ([`tcsl_tensor::window::window_dot`]).
//! * **Prefix-sum window norms** — one O(T) pass per scale
//!   ([`tcsl_tensor::window::window_sq_norms`]) yields `‖w‖²` in O(1) per
//!   window, shared by all shapelets and measures of the scale
//!   ([`ScaleWindows`]).
//! * **Bank-side precomputation** — shapelet row norms come from
//!   [`ShapeletBank::precomputed`](crate::ShapeletBank::precomputed), once
//!   per bank instead of once per series.
//! * **Blocked fallback** — when the series is too large to stay cache
//!   resident across the per-shapelet passes, windows are copied in small
//!   tiles (a bounded scratch buffer, reused across tiles) and scored
//!   matmul-style ([`TILE_WINDOWS`]).
//!
//! Peak per-series allocation is O(D·T + N_w + K) — no term proportional
//! to `N_w × D·len`. All engines funnel scoring through
//! [`Measure::finish`], and agree with the unfold oracle to f32 round-off
//! (property-tested in `crate::proptests`).

use crate::bank::{GroupPrecomp, ShapeletGroup};
use crate::measure::Measure;
use crate::transform::pad_to_len;
use tcsl_tensor::window::{count_windows, window_dot, window_dot4, window_sq_norms};
use tcsl_tensor::Tensor;

/// Series-side state for one (scale, stride): the padded series plus the
/// prefix-sum-derived per-window norms every measure of the scale shares.
pub struct ScaleWindows {
    /// Window length (= shapelet length of the scale).
    pub len: usize,
    /// Window stride.
    pub stride: usize,
    /// Number of windows.
    pub n: usize,
    /// The `(D, max(T, len))` series buffer windows are read from (equal to
    /// the raw series whenever it is at least `len` long).
    pub padded: Tensor,
    /// `‖w‖²` per window, from the O(T) prefix-sum pass.
    pub sq_norms: Vec<f32>,
    /// `1 / √(‖w‖² + 1e-12)` per window (cosine's window-side factor).
    pub inv_norms: Vec<f32>,
}

impl ScaleWindows {
    /// Builds the per-scale state for a `(D, T)` series: zero-pads short
    /// series (so every scale yields at least one window, matching
    /// [`crate::transform::windows_for`]) and runs the prefix-sum norm
    /// pass.
    pub fn new(values: &Tensor, len: usize, stride: usize) -> ScaleWindows {
        let padded = pad_to_len(values, len);
        let n = count_windows(padded.cols(), len, stride);
        let sq_norms = window_sq_norms(&padded, len, stride);
        let inv_norms = sq_norms.iter().map(|&w| 1.0 / (w + 1e-12).sqrt()).collect();
        ScaleWindows {
            len,
            stride,
            n,
            padded,
            sq_norms,
            inv_norms,
        }
    }

    /// Whether this state serves groups of the given scale/stride.
    pub fn matches(&self, len: usize, stride: usize) -> bool {
        self.len == len && self.stride == stride
    }
}

/// Windows per tile of the blocked fallback path: 64 windows × D·len f32
/// keeps the scratch tile in L1/L2 while amortizing each window copy over
/// all `K` shapelets of the group.
pub const TILE_WINDOWS: usize = 64;

/// Series bytes above which the blocked path takes over: beyond ~1 MiB the
/// per-shapelet streaming passes fall out of L2 and re-copying windows
/// tile-by-tile (one pass over the series, K dots per copied window) wins.
pub const BLOCKED_SERIES_BYTES: usize = 1 << 20;

/// Pools one group over a series: the per-shapelet best score plus the
/// best window index, computed without materializing the window matrix.
/// Equivalent to `score_matrix` + `pool` (the property-tested contract).
pub fn pool_group(
    sw: &ScaleWindows,
    g: &ShapeletGroup,
    pre: &GroupPrecomp,
) -> (Vec<f32>, Vec<usize>) {
    debug_assert!(sw.matches(g.len, g.stride));
    debug_assert_eq!(pre.sq_norms.len(), g.k());
    pool_measure(sw, g.measure, pre)
}

/// [`pool_group`] addressed by measure alone: the shapelet side is fully
/// described by the precomputation (tap rows + norms), so callers that hold
/// shapelet values outside a [`ShapeletGroup`] — the training-path custom
/// op differentiates graph-bound parameter tensors — pool through here.
pub fn pool_measure(
    sw: &ScaleWindows,
    measure: Measure,
    pre: &GroupPrecomp,
) -> (Vec<f32>, Vec<usize>) {
    let series_bytes = sw.padded.numel() * core::mem::size_of::<f32>();
    if pre.sq_norms.len() > 1 && series_bytes > BLOCKED_SERIES_BYTES {
        tcsl_obs::counters::SHAPELET_POOL_BLOCKED.add(1);
        pool_group_blocked(sw, measure, pre)
    } else {
        tcsl_obs::counters::SHAPELET_POOL_FUSED.add(1);
        pool_group_fused(sw, measure, pre)
    }
}

/// Per-window scores of a single shapelet of the group — the streaming
/// replacement for one `score_matrix` column, used by best-match
/// localization (which needs every window's score, not just the pooled
/// one).
///
/// Mirrors the fused pooling engine's shapelet blocking (blocks of 4 via
/// [`window_dot4`], remainder via [`window_dot`]), so the score of shapelet
/// `k` here is bit-identical to the one [`pool_group_fused`] pooled over —
/// localization provably explains the feature value.
pub fn shapelet_scores(
    sw: &ScaleWindows,
    g: &ShapeletGroup,
    pre: &GroupPrecomp,
    k: usize,
) -> Vec<f32> {
    assert!(
        k < g.k(),
        "shapelet {k} out of range for group of {}",
        g.k()
    );
    let d = sw.padded.rows();
    let width = (d * sw.len) as f32;
    let (s_sq, s_inv) = (pre.sq_norms[k], pre.inv_norms[k]);
    let full = g.k() - g.k() % 4;
    let mut out = Vec::with_capacity(sw.n);
    if k < full {
        tcsl_tensor::matmul::count_dot_dispatch(sw.len, (4 * d * sw.n) as u64);
        let kb = k / 4 * 4;
        let j = k - kb;
        let taps = [
            pre.tap_row(kb),
            pre.tap_row(kb + 1),
            pre.tap_row(kb + 2),
            pre.tap_row(kb + 3),
        ];
        for w in 0..sw.n {
            let cross = window_dot4(&sw.padded, taps, w * sw.stride, sw.len)[j];
            out.push(score(g.measure, cross, sw, w, s_sq, s_inv, width));
        }
    } else {
        tcsl_tensor::matmul::count_dot_dispatch(sw.len, (d * sw.n) as u64);
        let taps = pre.tap_row(k);
        for w in 0..sw.n {
            let cross = window_dot(&sw.padded, taps, w * sw.stride, sw.len);
            out.push(score(g.measure, cross, sw, w, s_sq, s_inv, width));
        }
    }
    out
}

/// One (window, shapelet) score. Mirrors [`Measure::finish`] exactly —
/// cosine uses the cached inverse norms, which are bit-identical to the
/// ones `finish` derives — so every engine produces the same value for the
/// same raw dot product. Shared with the quantized engines
/// ([`crate::quant`]), which differ only in the dot kernel.
#[inline]
pub(crate) fn score(
    m: Measure,
    cross: f32,
    sw: &ScaleWindows,
    w: usize,
    s_sq: f32,
    s_inv: f32,
    width: f32,
) -> f32 {
    match m {
        Measure::Euclidean => (((sw.sq_norms[w] - 2.0 * cross + s_sq).max(0.0)) / width).sqrt(),
        Measure::Cosine => cross * sw.inv_norms[w] * s_inv,
        Measure::CrossCorrelation => cross / width,
    }
}

/// Fully fused engine: shapelet-major, one streaming pass over the series
/// per block of 4 shapelets (the load-sharing [`window_dot4`] kernel keeps
/// the window in registers across the block), O(1) extra memory. Best when
/// the series fits in cache (the common case — a 4k-step univariate series
/// is 16 KiB).
pub(crate) fn pool_group_fused(
    sw: &ScaleWindows,
    measure: Measure,
    pre: &GroupPrecomp,
) -> (Vec<f32>, Vec<usize>) {
    let d = sw.padded.rows();
    let width = (d * sw.len) as f32;
    let k = pre.sq_norms.len();
    // One gate check for the whole pool call: k dots per window, one
    // length-only dispatch decision shared by every one of them.
    tcsl_tensor::matmul::count_dot_dispatch(sw.len, (k * d * sw.n) as u64);
    let mut pooled = vec![f32::NAN; k];
    let mut args = vec![0usize; k];
    let full = k - k % 4;
    for kb in (0..full).step_by(4) {
        let taps = [
            pre.tap_row(kb),
            pre.tap_row(kb + 1),
            pre.tap_row(kb + 2),
            pre.tap_row(kb + 3),
        ];
        for w in 0..sw.n {
            let cross = window_dot4(&sw.padded, taps, w * sw.stride, sw.len);
            for (j, &c) in cross.iter().enumerate() {
                let kk = kb + j;
                let s = score(
                    measure,
                    c,
                    sw,
                    w,
                    pre.sq_norms[kk],
                    pre.inv_norms[kk],
                    width,
                );
                if w == 0 || measure.better(s, pooled[kk]) {
                    pooled[kk] = s;
                    args[kk] = w;
                }
            }
        }
    }
    for kk in full..k {
        let taps = pre.tap_row(kk);
        let (s_sq, s_inv) = (pre.sq_norms[kk], pre.inv_norms[kk]);
        let mut best = f32::NAN;
        let mut best_w = 0usize;
        for w in 0..sw.n {
            let cross = window_dot(&sw.padded, taps, w * sw.stride, sw.len);
            let s = score(measure, cross, sw, w, s_sq, s_inv, width);
            if w == 0 || measure.better(s, best) {
                best = s;
                best_w = w;
            }
        }
        pooled[kk] = best;
        args[kk] = best_w;
    }
    (pooled, args)
}

/// Blocked fallback engine: copies windows into a bounded scratch tile
/// (reused across tiles, never `N_w` rows at once) and scores each copied
/// row against all `K` shapelets before moving on — one pass over the
/// series total, which wins once the series no longer stays cache resident
/// across `K` streaming passes.
pub(crate) fn pool_group_blocked(
    sw: &ScaleWindows,
    measure: Measure,
    pre: &GroupPrecomp,
) -> (Vec<f32>, Vec<usize>) {
    let d = sw.padded.rows();
    let len = sw.len;
    let row_w = d * len;
    let width = row_w as f32;
    let k = pre.sq_norms.len();
    // Blocked rows are the full d·len window, so dispatch is on row_w.
    tcsl_tensor::matmul::count_dot_dispatch(row_w, (k * sw.n) as u64);
    let mut pooled = vec![f32::NAN; k];
    let mut args = vec![0usize; k];
    let mut tile = vec![0.0f32; TILE_WINDOWS.min(sw.n) * row_w];
    let mut tile_start = 0usize;
    while tile_start < sw.n {
        let tile_n = TILE_WINDOWS.min(sw.n - tile_start);
        for (r, buf) in tile.chunks_mut(row_w).take(tile_n).enumerate() {
            let start = (tile_start + r) * sw.stride;
            for v in 0..d {
                buf[v * len..(v + 1) * len].copy_from_slice(&sw.padded.row(v)[start..start + len]);
            }
        }
        for r in 0..tile_n {
            let w = tile_start + r;
            let row = &tile[r * row_w..(r + 1) * row_w];
            for (j, (p, a)) in pooled.iter_mut().zip(args.iter_mut()).enumerate() {
                let cross = tcsl_tensor::matmul::dot(row, pre.tap_row(j));
                let s = score(
                    measure,
                    cross,
                    sw,
                    w,
                    pre.sq_norms[j],
                    pre.inv_norms[j],
                    width,
                );
                if w == 0 || measure.better(s, *p) {
                    *p = s;
                    *a = w;
                }
            }
        }
        tile_start += tile_n;
    }
    (pooled, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShapeletConfig;
    use crate::transform::windows_for;
    use crate::ShapeletBank;
    use tcsl_tensor::rng::seeded;

    fn setup(d: usize, t: usize, len: usize, stride: usize, k: usize) -> (ShapeletBank, Tensor) {
        let cfg = ShapeletConfig {
            lengths: vec![len],
            k_per_group: k,
            measures: Measure::ALL.to_vec(),
            stride,
        };
        let mut rng = seeded(11);
        let mut bank = ShapeletBank::new(&cfg, d);
        bank.randomize(&mut rng);
        let series = Tensor::randn([d, t], &mut rng);
        (bank, series)
    }

    fn oracle(g: &ShapeletGroup, series: &Tensor) -> (Vec<f32>, Vec<usize>) {
        let windows = windows_for(series, g.len, g.stride);
        let scores = g.measure.score_matrix(&windows, &g.shapelets);
        let (pooled, a) = g.measure.pool(&scores);
        (pooled.as_slice().to_vec(), a)
    }

    fn assert_engines_match(bank: &ShapeletBank, series: &Tensor) {
        let pre = bank.precomputed();
        for (gi, g) in bank.groups().iter().enumerate() {
            let sw = ScaleWindows::new(series, g.len, g.stride);
            let (want, want_args) = oracle(g, series);
            for (pooled, a) in [
                pool_group_fused(&sw, g.measure, &pre[gi]),
                pool_group_blocked(&sw, g.measure, &pre[gi]),
            ] {
                for j in 0..g.k() {
                    assert!(
                        (pooled[j] - want[j]).abs() < 1e-4,
                        "{:?} k={j}: fused {} vs oracle {}",
                        g.measure,
                        pooled[j],
                        want[j]
                    );
                    assert_eq!(a[j], want_args[j], "{:?} k={j} argmin", g.measure);
                }
            }
        }
    }

    #[test]
    fn engines_agree_with_oracle() {
        let (bank, series) = setup(2, 40, 5, 1, 3);
        assert_engines_match(&bank, &series);
    }

    #[test]
    fn engines_agree_with_stride_and_many_tiles() {
        // > TILE_WINDOWS windows so the blocked path crosses tiles.
        let (bank, series) = setup(1, 300, 7, 2, 4);
        assert_engines_match(&bank, &series);
    }

    #[test]
    fn short_series_pad_to_one_window() {
        let (bank, series) = setup(1, 3, 8, 1, 2);
        let g = &bank.groups()[0];
        let sw = ScaleWindows::new(&series, g.len, g.stride);
        assert_eq!(sw.n, 1);
        assert_engines_match(&bank, &series);
    }

    #[test]
    fn shapelet_scores_match_score_matrix_column() {
        let (bank, series) = setup(2, 30, 4, 1, 3);
        let pre = bank.precomputed();
        for (gi, g) in bank.groups().iter().enumerate() {
            let sw = ScaleWindows::new(&series, g.len, g.stride);
            let windows = windows_for(&series, g.len, g.stride);
            let scores = g.measure.score_matrix(&windows, &g.shapelets);
            for k in 0..g.k() {
                let col = shapelet_scores(&sw, g, &pre[gi], k);
                assert_eq!(col.len(), scores.rows());
                for (w, &s) in col.iter().enumerate() {
                    assert!((s - scores.at2(w, k)).abs() < 1e-4, "w={w} k={k}");
                }
            }
        }
    }

    #[test]
    fn blocked_path_engages_on_large_series() {
        // 2 vars × 200k steps = 1.6 MB > BLOCKED_SERIES_BYTES.
        let (bank, series) = setup(2, 200_000, 16, 512, 2);
        let g = &bank.groups()[0];
        assert!(series.numel() * 4 > BLOCKED_SERIES_BYTES);
        let pre = bank.precomputed();
        let sw = ScaleWindows::new(&series, g.len, g.stride);
        let (via_dispatch, _) = pool_group(&sw, g, &pre[0]);
        let (via_blocked, _) = pool_group_blocked(&sw, g.measure, &pre[0]);
        assert_eq!(via_dispatch, via_blocked);
    }
}

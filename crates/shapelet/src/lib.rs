#![warn(missing_docs)]
// Index-based loops in the numeric kernels walk several parallel
// buffers at once; iterator rewrites obscure that correspondence.
#![allow(clippy::needless_range_loop)]
// The error wall (clippy.toml) exempts test builds: tests assert on values
// and unwrap() freely.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]
//! # tcsl-shapelet
//!
//! The **Shapelet Transformer** `f` — the representation encoder at the
//! heart of TimeCSL (paper §2.1).
//!
//! A [`ShapeletBank`] holds learnable shapelets organised into groups, one
//! per (scale = shapelet length, (dis)similarity measure) combination. For a
//! series `x`, each shapelet contributes one feature: its best
//! (dis)similarity against all sliding windows of `x` —
//!
//! * minimum length-normalized Euclidean distance,
//! * maximum cosine similarity,
//! * maximum cross-correlation,
//!
//! so the representation `z = f(x)` is fully interpretable: coordinate `j`
//! is "how well shapelet `j` matches somewhere in `x`".
//!
//! Two evaluation paths share the same numerics:
//!
//! * [`transform`] — the fast inference path (no gradients, parallel over
//!   series),
//! * [`diff_transform`] — the autodiff path used during contrastive
//!   learning and fine-tuning. It runs the *same* fused streaming kernel as
//!   inference, wrapped in a custom tape op ([`diff_op::ShapeletDistanceOp`])
//!   with an arg-routed analytic backward; the original eager-graph
//!   formulation survives as [`diff_transform::oracle`] for parity tests.

pub mod bank;
pub mod config;
pub mod diff_op;
pub mod diff_transform;
pub mod fused;
pub mod init;
pub mod matching;
pub mod measure;
pub mod quant;
pub mod transform;

pub use bank::{GroupPrecomp, ShapeletBank, ShapeletGroup};
pub use config::ShapeletConfig;
pub use measure::Measure;
pub use quant::{BankPrecision, QuantizedPrecomp};

#[cfg(test)]
mod proptests;

//! The bank of learnable shapelets: groups of `K` shapelets per
//! (scale, measure), a stable feature layout, and text serialization.

use crate::config::ShapeletConfig;
use crate::measure::Measure;
use crate::quant::{BankPrecision, QuantizedPrecomp};
use std::fmt::Write as _;
use std::ops::Range;
use std::sync::OnceLock;
use tcsl_error::{TcslError, TcslResult};
use tcsl_tensor::quant::{QuantScheme, F16_MAX};
use tcsl_tensor::Tensor;

/// One (scale, measure) group of `K` shapelets, stored flattened as a
/// `(K, D·len)` matrix (channel-major, matching window layout).
#[derive(Clone, Debug)]
pub struct ShapeletGroup {
    /// Shapelet length in time steps.
    pub len: usize,
    /// Window stride used when sliding.
    pub stride: usize,
    /// The (dis)similarity measure of this group.
    pub measure: Measure,
    /// `(K, D·len)` shapelet matrix.
    pub shapelets: Tensor,
}

/// Shapelet-side values the transform needs for **every** series, hoisted
/// out of the per-series hot path and computed once per bank (lazily, on
/// first transform; invalidated whenever the shapelets change). This is the
/// bank-side half of the fused transform kernel's contract: per-window
/// quantities come from the series-side prefix-sum pass, per-shapelet
/// quantities come from here, and the kernel combines the two per
/// (window, shapelet) pair in O(1) on top of the raw dot product.
#[derive(Clone, Debug)]
pub struct GroupPrecomp {
    /// Squared Euclidean norm `‖s_k‖²` of every shapelet row.
    pub sq_norms: Vec<f32>,
    /// `1 / √(‖s_k‖² + 1e-12)` per row — the L2 normalization of the
    /// cosine measure, folded into a scale factor instead of a normalized
    /// matrix copy.
    pub inv_norms: Vec<f32>,
    /// The shapelet rows repacked with a padded row stride. The `(K, D·len)`
    /// matrix stores rows back-to-back, which puts the four tap streams of
    /// the blocked dot kernel at cache-hostile relative offsets; spacing
    /// rows out to a padded stride measurably improves streaming bandwidth
    /// (~1.5× on long scales). Values are bit-identical copies of the rows,
    /// so kernels reading either buffer produce identical results.
    taps: Vec<f32>,
    /// Row stride (in floats) of [`Self::taps`].
    tap_stride: usize,
    /// Row length `D·len` (the unpadded prefix of each stride).
    row_len: usize,
}

impl GroupPrecomp {
    /// Computes the precomputation for one group's `(K, D·len)` matrix.
    pub fn of(shapelets: &Tensor) -> GroupPrecomp {
        let sq_norms: Vec<f32> = (0..shapelets.rows())
            .map(|k| shapelets.row(k).iter().map(|&x| x * x).sum())
            .collect();
        let inv_norms = sq_norms.iter().map(|&n| 1.0 / (n + 1e-12).sqrt()).collect();
        let row_len = shapelets.cols();
        // Long rows get a page-multiple stride (best for the L2 streamer);
        // short rows just round up to a cache line to bound the waste.
        let tap_stride = if row_len >= 1024 {
            row_len.div_ceil(1024) * 1024
        } else {
            row_len.div_ceil(16) * 16
        };
        let mut taps = vec![0.0f32; shapelets.rows() * tap_stride];
        for k in 0..shapelets.rows() {
            taps[k * tap_stride..k * tap_stride + row_len].copy_from_slice(shapelets.row(k));
        }
        GroupPrecomp {
            sq_norms,
            inv_norms,
            taps,
            tap_stride,
            row_len,
        }
    }

    /// Shapelet row `k` (length `D·len`), from the repacked buffer.
    pub fn tap_row(&self, k: usize) -> &[f32] {
        &self.taps[k * self.tap_stride..k * self.tap_stride + self.row_len]
    }
}

impl ShapeletGroup {
    /// Number of shapelets in the group.
    pub fn k(&self) -> usize {
        self.shapelets.rows()
    }

    /// One shapelet reshaped back to `(D, len)`.
    pub fn shapelet(&self, k: usize, d: usize) -> Tensor {
        assert_eq!(self.shapelets.cols(), d * self.len, "D mismatch");
        Tensor::from_vec(self.shapelets.row(k).to_vec(), [d, self.len])
    }
}

/// A full Shapelet Transformer: all groups, ordered scale-major then
/// measure — so the feature columns of one scale are contiguous, which the
/// Multi-Scale Alignment loss and the exploration UI rely on.
#[derive(Clone, Debug)]
pub struct ShapeletBank {
    /// Number of variables the bank was built for.
    pub d: usize,
    groups: Vec<ShapeletGroup>,
    /// Lazily computed shapelet-side precomputation, one entry per group.
    /// Reset by every mutable access to the groups so it can never go
    /// stale; shared by all series of a batch transform.
    precomp: OnceLock<Vec<GroupPrecomp>>,
    /// Half-width tap storage, present iff the bank has been quantized
    /// ([`Self::quantize`]). When set, `groups[..].shapelets` hold the
    /// **dequantized** values, so every f32 consumer (oracle, localization,
    /// serialization) sees exactly what the quantized kernels compute with.
    /// Cleared by any mutable access to the groups.
    quant: Option<Vec<QuantizedPrecomp>>,
    /// Inference precision; [`BankPrecision::Full`] unless quantized.
    precision: BankPrecision,
}

impl ShapeletBank {
    /// Builds a zero-initialized bank for `d`-variate series. Use
    /// [`crate::init::init_from_data`] (or [`Self::randomize`]) before
    /// training.
    pub fn new(config: &ShapeletConfig, d: usize) -> Self {
        config.validate();
        assert!(d >= 1, "need at least one variable");
        let mut groups = Vec::with_capacity(config.n_groups());
        for &len in &config.lengths {
            for &measure in &config.measures {
                groups.push(ShapeletGroup {
                    len,
                    stride: config.stride,
                    measure,
                    shapelets: Tensor::zeros([config.k_per_group, d * len]),
                });
            }
        }
        ShapeletBank {
            d,
            groups,
            precomp: OnceLock::new(),
            quant: None,
            precision: BankPrecision::Full,
        }
    }

    /// Fills every shapelet with standard-normal noise (scaled down).
    pub fn randomize(&mut self, rng: &mut impl rand::Rng) {
        self.precomp = OnceLock::new();
        self.quant = None;
        self.precision = BankPrecision::Full;
        for g in &mut self.groups {
            g.shapelets = Tensor::randn(g.shapelets.shape().clone(), rng).scale(0.5);
        }
    }

    /// The groups, in feature order.
    pub fn groups(&self) -> &[ShapeletGroup] {
        &self.groups
    }

    /// Mutable access to the groups (used by training to write back learned
    /// shapelets). Invalidates the cached precomputation — the only way to
    /// mutate shapelets is through `&mut self`, so [`Self::precomputed`]
    /// can never observe stale norms. Also drops any quantized taps: a
    /// mutated bank is a full-precision bank until re-quantized.
    pub fn groups_mut(&mut self) -> &mut [ShapeletGroup] {
        self.precomp = OnceLock::new();
        self.quant = None;
        self.precision = BankPrecision::Full;
        &mut self.groups
    }

    /// The per-group shapelet-side precomputation (row squared norms,
    /// inverse L2 norms), computed once per bank on first use and shared by
    /// every series transformed against it.
    pub fn precomputed(&self) -> &[GroupPrecomp] {
        self.precomp.get_or_init(|| {
            self.groups
                .iter()
                .map(|g| GroupPrecomp::of(&g.shapelets))
                .collect()
        })
    }

    /// The bank's inference precision ([`BankPrecision::Full`] unless
    /// [`Self::quantize`]d).
    pub fn precision(&self) -> BankPrecision {
        self.precision
    }

    /// The per-group half-width tap storage, present iff the bank is
    /// quantized. The transform and localization paths route through these
    /// instead of [`Self::precomputed`] when set.
    pub fn quantized(&self) -> Option<&[QuantizedPrecomp]> {
        self.quant.as_deref()
    }

    /// Quantizes the bank in place for inference — an explicit post-training
    /// step. Tap rows are converted to the half-width `scheme`, and the f32
    /// shapelet tensors are replaced by their **dequantized** values, so
    /// every consumer of the f32 view (oracle transform, localization,
    /// serialization, norms) is consistent with what the quantized kernels
    /// compute. Idempotent: re-quantizing an already-quantized bank with the
    /// same scheme changes nothing.
    ///
    /// Fails with [`TcslError::NonFiniteInput`](tcsl_error::ErrorClass) on
    /// NaN/infinite taps, and with a config error for finite f16 overflow
    /// (|tap| > 65504 — use i16, whose per-row scale absorbs any range).
    pub fn quantize(&mut self, scheme: QuantScheme) -> TcslResult<()> {
        for (gi, g) in self.groups.iter().enumerate() {
            for k in 0..g.k() {
                let row = g.shapelets.row(k);
                if !row.iter().all(|x| x.is_finite()) {
                    return Err(TcslError::non_finite(format!(
                        "shapelet taps (group {gi}, shapelet {k})"
                    )));
                }
                if scheme == QuantScheme::F16 {
                    if let Some(&big) = row.iter().find(|x| x.abs() > F16_MAX) {
                        return Err(TcslError::config(format!(
                            "tap {big} in group {gi} shapelet {k} exceeds the f16 range \
                             (±{F16_MAX}); quantize with scheme=i16 instead"
                        )));
                    }
                }
            }
        }
        let mut qps = Vec::with_capacity(self.groups.len());
        for g in &mut self.groups {
            let qp = QuantizedPrecomp::of(&g.shapelets, scheme);
            g.shapelets = qp.dequantized();
            qps.push(qp);
        }
        self.precomp = OnceLock::new();
        self.quant = Some(qps);
        self.precision = match scheme {
            QuantScheme::F16 => BankPrecision::F16,
            QuantScheme::I16 => BankPrecision::I16,
        };
        Ok(())
    }

    /// i16 quantization with externally supplied per-group, per-shapelet
    /// scales — the model-loading path, where reusing the persisted scales
    /// makes save → load → re-quantize reconstruct the exact same taps.
    /// Scales must be positive and finite and every `round(tap / scale)`
    /// must land in `[-32767, 32767]`.
    pub fn quantize_with_scales(&mut self, scales: &[Vec<f32>]) -> TcslResult<()> {
        if scales.len() != self.groups.len() {
            return Err(TcslError::model_format(
                format!("{} scale rows", self.groups.len()),
                format!("{}", scales.len()),
            ));
        }
        for (gi, (g, gs)) in self.groups.iter().zip(scales).enumerate() {
            if gs.len() != g.k() {
                return Err(TcslError::model_format(
                    format!("{} scales for group {gi}", g.k()),
                    format!("{}", gs.len()),
                ));
            }
            for (k, &s) in gs.iter().enumerate() {
                if !(s.is_finite() && s > 0.0) {
                    return Err(TcslError::model_format(
                        format!("a positive finite scale (group {gi}, shapelet {k})"),
                        format!("{s}"),
                    ));
                }
                let row = g.shapelets.row(k);
                if !row.iter().all(|x| x.is_finite()) {
                    return Err(TcslError::non_finite(format!(
                        "shapelet taps (group {gi}, shapelet {k})"
                    )));
                }
                if let Some(&big) = row.iter().find(|x| (x.abs() / s).round() > 32767.0) {
                    return Err(TcslError::model_format(
                        format!("taps within ±32767·scale (group {gi}, shapelet {k})"),
                        format!("tap {big} at scale {s}"),
                    ));
                }
            }
        }
        let mut qps = Vec::with_capacity(self.groups.len());
        for (g, gs) in self.groups.iter_mut().zip(scales) {
            let qp = QuantizedPrecomp::with_scales(&g.shapelets, gs.clone());
            g.shapelets = qp.dequantized();
            qps.push(qp);
        }
        self.precomp = OnceLock::new();
        self.quant = Some(qps);
        self.precision = BankPrecision::I16;
        Ok(())
    }

    /// Total representation dimensionality.
    pub fn repr_dim(&self) -> usize {
        self.groups.iter().map(ShapeletGroup::k).sum()
    }

    /// Distinct scales (ascending).
    pub fn scales(&self) -> Vec<usize> {
        let mut ls: Vec<usize> = self.groups.iter().map(|g| g.len).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Feature-column range of group `g`.
    pub fn group_columns(&self, g: usize) -> Range<usize> {
        let start: usize = self.groups[..g].iter().map(ShapeletGroup::k).sum();
        start..start + self.groups[g].k()
    }

    /// Feature-column range of each scale: `(len, start..end)`, contiguous
    /// by construction.
    pub fn scale_columns(&self) -> Vec<(usize, Range<usize>)> {
        let mut out = Vec::new();
        let mut col = 0;
        let mut i = 0;
        while i < self.groups.len() {
            let len = self.groups[i].len;
            let start = col;
            while i < self.groups.len() && self.groups[i].len == len {
                col += self.groups[i].k();
                i += 1;
            }
            out.push((len, start..col));
        }
        out
    }

    /// Stable, human-readable name of every feature column:
    /// `"L{len}:{measure}:{k}"`.
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.repr_dim());
        for g in &self.groups {
            for k in 0..g.k() {
                names.push(format!("L{}:{}:{}", g.len, g.measure.name(), k));
            }
        }
        names
    }

    /// Resolves a feature column back to `(group index, shapelet index)`,
    /// or a [`TcslError::Config`] when the column does not exist — columns
    /// come from user selections in the exploration UI.
    pub fn feature_to_shapelet(&self, column: usize) -> TcslResult<(usize, usize)> {
        let mut col = column;
        for (gi, g) in self.groups.iter().enumerate() {
            if col < g.k() {
                return Ok((gi, col));
            }
            col -= g.k();
        }
        Err(TcslError::config(format!(
            "feature column {column} out of range (bank has {} features)",
            self.repr_dim()
        )))
    }

    /// Builds a sub-bank containing only the shapelets behind the given
    /// feature columns — the demo's "redo the analysis with the selected
    /// shapelets" interaction (§3, step 4). Group order is preserved; empty
    /// groups are dropped.
    pub fn subset_columns(&self, columns: &[usize]) -> TcslResult<ShapeletBank> {
        if columns.is_empty() {
            return Err(TcslError::empty("feature column selection"));
        }
        let mut per_group: Vec<Vec<usize>> = vec![Vec::new(); self.groups.len()];
        for &c in columns {
            let (g, k) = self.feature_to_shapelet(c)?;
            per_group[g].push(k);
        }
        let mut groups = Vec::new();
        let mut sub_quant = self.quant.as_ref().map(|_| Vec::new());
        for (gi, ks) in per_group.into_iter().enumerate() {
            if ks.is_empty() {
                continue;
            }
            let src = &self.groups[gi];
            let width = src.shapelets.cols();
            let mut data = Vec::with_capacity(ks.len() * width);
            for &k in &ks {
                data.extend_from_slice(src.shapelets.row(k));
            }
            // A quantized bank subsets to a quantized bank: the selected
            // half-width rows are carried over, no re-quantization round
            // trip.
            if let (Some(sq), Some(qps)) = (sub_quant.as_mut(), self.quant.as_ref()) {
                sq.push(qps[gi].subset_rows(&ks));
            }
            groups.push(ShapeletGroup {
                len: src.len,
                stride: src.stride,
                measure: src.measure,
                shapelets: Tensor::from_vec(data, [ks.len(), width]),
            });
        }
        Ok(ShapeletBank {
            d: self.d,
            groups,
            precomp: OnceLock::new(),
            quant: sub_quant,
            precision: self.precision,
        })
    }

    /// Prunes near-duplicate shapelets: within each group, a shapelet whose
    /// cosine similarity to an earlier-kept one exceeds `max_cosine` is
    /// dropped. Returns the pruned bank and the surviving feature columns
    /// (in original column order), so existing feature matrices can be
    /// subset consistently. Contrastive training can converge several
    /// shapelets onto the same pattern; pruning keeps the representation
    /// interpretable without retraining.
    pub fn prune_redundant(&self, max_cosine: f32) -> TcslResult<(ShapeletBank, Vec<usize>)> {
        if !(0.0..=1.0).contains(&max_cosine) {
            return Err(TcslError::config(format!(
                "max_cosine must be in [0, 1], got {max_cosine}"
            )));
        }
        let mut kept_columns = Vec::new();
        let mut groups = Vec::new();
        let mut sub_quant = self.quant.as_ref().map(|_| Vec::new());
        let mut col_base = 0usize;
        for (gi, src) in self.groups.iter().enumerate() {
            let width = src.shapelets.cols();
            let mut kept_rows: Vec<usize> = Vec::new();
            for k in 0..src.k() {
                let row = src.shapelets.row(k);
                let norm_k = (row.iter().map(|&x| x * x).sum::<f32>()).sqrt().max(1e-12);
                let duplicate = kept_rows.iter().any(|&j| {
                    let other = src.shapelets.row(j);
                    let norm_j = (other.iter().map(|&x| x * x).sum::<f32>())
                        .sqrt()
                        .max(1e-12);
                    let dot: f32 = row.iter().zip(other).map(|(&a, &b)| a * b).sum();
                    dot / (norm_k * norm_j) > max_cosine
                });
                if !duplicate {
                    kept_rows.push(k);
                    kept_columns.push(col_base + k);
                }
            }
            if !kept_rows.is_empty() {
                let mut data = Vec::with_capacity(kept_rows.len() * width);
                for &k in &kept_rows {
                    data.extend_from_slice(src.shapelets.row(k));
                }
                if let (Some(sq), Some(qps)) = (sub_quant.as_mut(), self.quant.as_ref()) {
                    sq.push(qps[gi].subset_rows(&kept_rows));
                }
                groups.push(ShapeletGroup {
                    len: src.len,
                    stride: src.stride,
                    measure: src.measure,
                    shapelets: Tensor::from_vec(data, [kept_rows.len(), width]),
                });
            }
            col_base += src.k();
        }
        if groups.is_empty() {
            return Err(TcslError::config(format!(
                "pruning at max_cosine={max_cosine} removed every shapelet"
            )));
        }
        Ok((
            ShapeletBank {
                d: self.d,
                groups,
                precomp: OnceLock::new(),
                quant: sub_quant,
                precision: self.precision,
            },
            kept_columns,
        ))
    }

    /// Builds a sub-bank with every shapelet of one scale (length).
    pub fn subset_scale(&self, len: usize) -> TcslResult<ShapeletBank> {
        let mut groups = Vec::new();
        let mut sub_quant = self.quant.as_ref().map(|_| Vec::new());
        for (gi, g) in self.groups.iter().enumerate() {
            if g.len == len {
                if let (Some(sq), Some(qps)) = (sub_quant.as_mut(), self.quant.as_ref()) {
                    sq.push(qps[gi].clone());
                }
                groups.push(g.clone());
            }
        }
        if groups.is_empty() {
            let scales: Vec<String> = self.scales().iter().map(|l| l.to_string()).collect();
            return Err(TcslError::config(format!(
                "no shapelets of length {len} in the bank; available scales: {}",
                scales.join(", ")
            )));
        }
        Ok(ShapeletBank {
            d: self.d,
            groups,
            precomp: OnceLock::new(),
            quant: sub_quant,
            precision: self.precision,
        })
    }

    // ------------------------------------------------------- serialization

    /// Serializes the bank to a plain text format (versioned header, one
    /// line per shapelet).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tcsl-bank v1 d={} groups={}",
            self.d,
            self.groups.len()
        );
        for g in &self.groups {
            let _ = writeln!(
                out,
                "group len={} stride={} measure={} k={}",
                g.len,
                g.stride,
                g.measure.name(),
                g.k()
            );
            for k in 0..g.k() {
                let row: Vec<String> = g.shapelets.row(k).iter().map(|x| x.to_string()).collect();
                let _ = writeln!(out, "{}", row.join(" "));
            }
        }
        out
    }

    /// Parses the text format produced by [`Self::to_text`].
    ///
    /// Structural damage (missing/unsupported header, truncated sections,
    /// wrong value counts) surfaces as [`TcslError::ModelFormat`];
    /// non-numeric fields surface as [`TcslError::Parse`] with the 1-based
    /// line inside the bank section.
    pub fn from_text(text: &str) -> TcslResult<Self> {
        let mut lines = text.lines();
        let mut lineno = 0usize; // 1-based once the first line is consumed
        let mut next_line = |what: &str| {
            lineno += 1;
            lines.next().map(|l| (lineno, l)).ok_or_else(|| {
                TcslError::model_format(what, format!("end of file after line {}", lineno - 1))
            })
        };
        let (hline, header) = next_line("tcsl-bank v1 header")
            .map_err(|_| TcslError::model_format("tcsl-bank v1 header", "empty bank file"))?;
        if !header.starts_with("tcsl-bank v1") {
            return Err(TcslError::model_format("tcsl-bank v1 header", header));
        }
        let mut d = None;
        let mut n_groups = None;
        for tok in header.split_whitespace() {
            if let Some(v) = tok.strip_prefix("d=") {
                d = Some(v.parse::<usize>().map_err(|e| {
                    TcslError::parse("tcsl-bank", hline, format!("bad d={v}: {e}"))
                })?);
            } else if let Some(v) = tok.strip_prefix("groups=") {
                n_groups = Some(v.parse::<usize>().map_err(|e| {
                    TcslError::parse("tcsl-bank", hline, format!("bad groups={v}: {e}"))
                })?);
            }
        }
        let d = d.ok_or_else(|| TcslError::model_format("d=<vars> in bank header", header))?;
        let n_groups =
            n_groups.ok_or_else(|| TcslError::model_format("groups=<n> in bank header", header))?;
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let (gline, gh) = next_line("group header")?;
            if !gh.starts_with("group ") {
                return Err(TcslError::model_format("group header", gh));
            }
            let mut len = None;
            let mut stride = None;
            let mut measure = None;
            let mut k = None;
            for tok in gh.split_whitespace() {
                if let Some(v) = tok.strip_prefix("len=") {
                    len = Some(v.parse::<usize>().map_err(|e| {
                        TcslError::parse("tcsl-bank", gline, format!("bad len={v}: {e}"))
                    })?);
                } else if let Some(v) = tok.strip_prefix("stride=") {
                    stride = Some(v.parse::<usize>().map_err(|e| {
                        TcslError::parse("tcsl-bank", gline, format!("bad stride={v}: {e}"))
                    })?);
                } else if let Some(v) = tok.strip_prefix("measure=") {
                    measure = Some(
                        Measure::parse(v)
                            .ok_or_else(|| TcslError::model_format("a known measure name", v))?,
                    );
                } else if let Some(v) = tok.strip_prefix("k=") {
                    k = Some(v.parse::<usize>().map_err(|e| {
                        TcslError::parse("tcsl-bank", gline, format!("bad k={v}: {e}"))
                    })?);
                }
            }
            let (len, stride, measure, k) = (
                len.ok_or_else(|| TcslError::model_format("len= in group header", gh))?,
                stride.ok_or_else(|| TcslError::model_format("stride= in group header", gh))?,
                measure.ok_or_else(|| TcslError::model_format("measure= in group header", gh))?,
                k.ok_or_else(|| TcslError::model_format("k= in group header", gh))?,
            );
            let mut data = Vec::with_capacity(k * d * len);
            for _ in 0..k {
                let (rline, line) = next_line("shapelet row")?;
                for tok in line.split_whitespace() {
                    let w = tok.parse::<f32>().map_err(|e| {
                        TcslError::parse("tcsl-bank", rline, format!("bad weight '{tok}': {e}"))
                    })?;
                    // Rust's f32 parser accepts "inf"/"NaN"; a bank with
                    // non-finite taps poisons every transform (and can't be
                    // quantized), so reject it at the door.
                    if !w.is_finite() {
                        return Err(TcslError::non_finite(format!(
                            "shapelet weight '{tok}' on line {rline}"
                        )));
                    }
                    data.push(w);
                }
            }
            if data.len() != k * d * len {
                return Err(TcslError::model_format(
                    format!("{} values for group len={len}", k * d * len),
                    format!("{}", data.len()),
                ));
            }
            groups.push(ShapeletGroup {
                len,
                stride,
                measure,
                shapelets: Tensor::from_vec(data, [k, d * len]),
            });
        }
        Ok(ShapeletBank {
            d,
            groups,
            precomp: OnceLock::new(),
            quant: None,
            precision: BankPrecision::Full,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    fn bank() -> ShapeletBank {
        let cfg = ShapeletConfig {
            lengths: vec![4, 8],
            k_per_group: 3,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        ShapeletBank::new(&cfg, 2)
    }

    #[test]
    fn layout_is_scale_major() {
        let b = bank();
        assert_eq!(b.groups().len(), 6);
        assert_eq!(b.repr_dim(), 18);
        assert_eq!(b.groups()[0].len, 4);
        assert_eq!(b.groups()[3].len, 8);
        assert_eq!(b.scales(), vec![4, 8]);
        let sc = b.scale_columns();
        assert_eq!(sc, vec![(4, 0..9), (8, 9..18)]);
    }

    #[test]
    fn group_columns_are_contiguous() {
        let b = bank();
        assert_eq!(b.group_columns(0), 0..3);
        assert_eq!(b.group_columns(4), 12..15);
    }

    #[test]
    fn feature_names_and_inverse() {
        let b = bank();
        let names = b.feature_names();
        assert_eq!(names.len(), 18);
        assert_eq!(names[0], "L4:euc:0");
        assert_eq!(names[17], "L8:xcorr:2");
        assert_eq!(b.feature_to_shapelet(0).unwrap(), (0, 0));
        assert_eq!(b.feature_to_shapelet(17).unwrap(), (5, 2));
    }

    #[test]
    fn bad_feature_column_is_a_config_error() {
        let err = bank().feature_to_shapelet(18).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn shapelet_reshape() {
        let mut b = bank();
        b.randomize(&mut seeded(1));
        let s = b.groups()[0].shapelet(1, 2);
        assert_eq!(s.shape().dims(), &[2, 4]);
        assert_eq!(s.as_slice(), b.groups()[0].shapelets.row(1));
    }

    #[test]
    fn subset_columns_keeps_selected_shapelets() {
        let mut b = bank();
        b.randomize(&mut seeded(4));
        // Columns 0..3 = group 0 entirely, column 4 = group 1 shapelet 1.
        let sub = b.subset_columns(&[0, 1, 2, 4]).unwrap();
        assert_eq!(sub.repr_dim(), 4);
        assert_eq!(sub.groups().len(), 2);
        assert_eq!(sub.groups()[0].shapelets, b.groups()[0].shapelets);
        assert_eq!(
            sub.groups()[1].shapelets.row(0),
            b.groups()[1].shapelets.row(1)
        );
    }

    #[test]
    fn subset_scale_selects_all_measures_of_that_length() {
        let mut b = bank();
        b.randomize(&mut seeded(5));
        let sub = b.subset_scale(8).unwrap();
        assert_eq!(sub.groups().len(), 3);
        assert!(sub.groups().iter().all(|g| g.len == 8));
        assert_eq!(sub.repr_dim(), 9);
    }

    #[test]
    fn subset_missing_scale_lists_available_scales() {
        let err = bank().subset_scale(99).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        let msg = err.to_string();
        assert!(msg.contains("no shapelets of length 99"), "{msg}");
        assert!(msg.contains("4, 8"), "available scales listed: {msg}");
    }

    #[test]
    fn empty_subset_selection_is_an_empty_input_error() {
        let err = bank().subset_columns(&[]).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::EmptyInput);
    }

    #[test]
    fn prune_drops_near_duplicates_only() {
        let mut b = bank();
        b.randomize(&mut seeded(6));
        // Make shapelet 1 of group 0 a scaled copy of shapelet 0 (cosine 1).
        let copy: Vec<f32> = b.groups()[0]
            .shapelets
            .row(0)
            .iter()
            .map(|&x| 2.0 * x)
            .collect();
        b.groups_mut()[0]
            .shapelets
            .row_mut(1)
            .copy_from_slice(&copy);
        let before = b.repr_dim();
        let (pruned, kept) = b.prune_redundant(0.99).unwrap();
        assert_eq!(
            pruned.repr_dim(),
            before - 1,
            "exactly the duplicate should go"
        );
        assert_eq!(kept.len(), before - 1);
        assert!(!kept.contains(&1), "column 1 was the duplicate");
        assert!(kept.contains(&0));
        // Surviving columns map back to identical shapelet content.
        let (gi, k) = pruned.feature_to_shapelet(0).unwrap();
        assert_eq!(
            pruned.groups()[gi].shapelets.row(k),
            b.groups()[0].shapelets.row(0)
        );
    }

    #[test]
    fn prune_with_loose_threshold_keeps_everything() {
        let mut b = bank();
        b.randomize(&mut seeded(7));
        let (pruned, kept) = b.prune_redundant(1.0).unwrap();
        assert_eq!(pruned.repr_dim(), b.repr_dim());
        assert_eq!(kept, (0..b.repr_dim()).collect::<Vec<_>>());
    }

    #[test]
    fn precomputed_norms_are_cached_and_invalidated() {
        let mut b = bank();
        b.randomize(&mut seeded(9));
        let direct: f32 = b.groups()[0].shapelets.row(0).iter().map(|&x| x * x).sum();
        assert!((b.precomputed()[0].sq_norms[0] - direct).abs() < 1e-6);
        let inv = b.precomputed()[0].inv_norms[0];
        assert!((inv - 1.0 / (direct + 1e-12).sqrt()).abs() < 1e-6);
        // Mutating through groups_mut must reset the cache.
        for x in b.groups_mut()[0].shapelets.row_mut(0) {
            *x = 0.0;
        }
        assert_eq!(b.precomputed()[0].sq_norms[0], 0.0);
    }

    #[test]
    fn text_round_trip() {
        let mut b = bank();
        b.randomize(&mut seeded(2));
        let text = b.to_text();
        let back = ShapeletBank::from_text(&text).unwrap();
        assert_eq!(back.d, b.d);
        assert_eq!(back.groups().len(), b.groups().len());
        for (g1, g2) in b.groups().iter().zip(back.groups()) {
            assert_eq!(g1.len, g2.len);
            assert_eq!(g1.measure, g2.measure);
            assert!(g1.shapelets.max_abs_diff(&g2.shapelets) < 1e-5);
        }
    }

    #[test]
    fn from_text_rejects_non_finite_weights() {
        use tcsl_error::ErrorClass;
        // Rust's f32 parser happily accepts these spellings; the loader
        // must not.
        for bad in ["inf", "-inf", "infinity", "NaN", "nan"] {
            let err = ShapeletBank::from_text(&format!(
                "tcsl-bank v1 d=1 groups=1\ngroup len=2 stride=1 measure=euc k=1\n0.5 {bad}\n"
            ))
            .unwrap_err();
            assert_eq!(err.class(), ErrorClass::NonFiniteInput, "{bad}: {err}");
            assert!(err.to_string().contains("line 3"), "{bad}: {err}");
        }
    }

    #[test]
    fn quantize_sets_precision_and_survives_round_trips() {
        use crate::quant::BankPrecision;
        use tcsl_tensor::quant::QuantScheme;
        for (scheme, precision) in [
            (QuantScheme::F16, BankPrecision::F16),
            (QuantScheme::I16, BankPrecision::I16),
        ] {
            let mut b = bank();
            b.randomize(&mut seeded(41));
            assert_eq!(b.precision(), BankPrecision::Full);
            assert!(b.quantized().is_none());
            b.quantize(scheme).unwrap();
            assert_eq!(b.precision(), precision);
            let qps = b.quantized().unwrap();
            assert_eq!(qps.len(), b.groups().len());
            // f32 view == dequantized view, so a second quantization is a
            // no-op on the values.
            let before: Vec<Tensor> = b.groups().iter().map(|g| g.shapelets.clone()).collect();
            b.quantize(scheme).unwrap();
            for (g, want) in b.groups().iter().zip(&before) {
                assert_eq!(&g.shapelets, want, "{scheme:?} idempotence");
            }
        }
    }

    #[test]
    fn mutation_drops_quantization() {
        use tcsl_tensor::quant::QuantScheme;
        let mut b = bank();
        b.randomize(&mut seeded(42));
        b.quantize(QuantScheme::F16).unwrap();
        let _ = b.groups_mut();
        assert!(b.quantized().is_none());
        assert_eq!(b.precision(), crate::quant::BankPrecision::Full);
        b.quantize(QuantScheme::I16).unwrap();
        b.randomize(&mut seeded(43));
        assert!(b.quantized().is_none());
    }

    #[test]
    fn quantize_rejects_non_finite_and_f16_overflow() {
        use tcsl_tensor::quant::QuantScheme;
        let mut b = bank();
        b.randomize(&mut seeded(44));
        b.groups_mut()[1].shapelets.row_mut(0)[2] = f32::NAN;
        let err = b.quantize(QuantScheme::F16).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::NonFiniteInput);
        assert!(err.to_string().contains("group 1"), "{err}");

        let mut b = bank();
        b.randomize(&mut seeded(45));
        b.groups_mut()[0].shapelets.row_mut(1)[0] = 1.0e6; // finite, > f16 max
        let err = b.quantize(QuantScheme::F16).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("i16"), "suggests i16: {err}");
        // The same bank quantizes fine as i16 (per-row scale absorbs range).
        b.quantize(QuantScheme::I16).unwrap();
    }

    #[test]
    fn subsetting_carries_quantized_taps() {
        use tcsl_tensor::quant::QuantScheme;
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            let mut b = bank();
            b.randomize(&mut seeded(46));
            b.quantize(scheme).unwrap();
            let sub = b.subset_columns(&[0, 1, 2, 4]).unwrap();
            assert_eq!(sub.precision(), b.precision());
            let qps = sub.quantized().unwrap();
            assert_eq!(qps.len(), sub.groups().len());
            for (g, qp) in sub.groups().iter().zip(qps) {
                assert_eq!(qp.k(), g.k());
                assert_eq!(qp.dequantized(), g.shapelets, "{scheme:?}");
            }
            let scale_sub = b.subset_scale(8).unwrap();
            assert_eq!(scale_sub.quantized().unwrap().len(), 3);
            let (pruned, _) = b.prune_redundant(1.0).unwrap();
            assert_eq!(pruned.quantized().unwrap().len(), pruned.groups().len());
        }
    }

    #[test]
    fn from_text_rejects_garbage_with_typed_variants() {
        use tcsl_error::ErrorClass;
        let class = |t: &str| ShapeletBank::from_text(t).unwrap_err().class();
        assert_eq!(class(""), ErrorClass::ModelFormat);
        assert_eq!(class("bogus header"), ErrorClass::ModelFormat);
        // Truncated: group header promised but missing.
        assert_eq!(
            class("tcsl-bank v1 d=1 groups=1\n"),
            ErrorClass::ModelFormat
        );
        // Non-numeric weight is a parse error carrying the line number.
        let err = ShapeletBank::from_text(
            "tcsl-bank v1 d=1 groups=1\ngroup len=2 stride=1 measure=euc k=1\n0.5 nope\n",
        )
        .unwrap_err();
        assert_eq!(err.class(), ErrorClass::Parse);
        assert!(err.to_string().contains("line 3"), "{err}");
    }
}

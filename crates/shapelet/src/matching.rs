//! Best-match localization: which subsequence of a series a shapelet
//! matched.
//!
//! This powers the demo's "Match" button (Fig. 3b): given a series and a
//! shapelet, find the window whose (dis)similarity defines the feature
//! value, so the match can be displayed/aligned against the raw series.

use crate::bank::ShapeletBank;
use crate::fused::{shapelet_scores, ScaleWindows};
use crate::measure::Measure;
use tcsl_data::TimeSeries;

/// The best-matching window of a shapelet in a series.
#[derive(Clone, Debug, PartialEq)]
pub struct ShapeletMatch {
    /// Group index in the bank.
    pub group: usize,
    /// Shapelet index within the group.
    pub shapelet: usize,
    /// Start position of the best window (in padded coordinates; equal to
    /// raw coordinates whenever the series is at least as long as the
    /// shapelet).
    pub start: usize,
    /// Window length (= shapelet length).
    pub len: usize,
    /// The feature value: the pooled (dis)similarity at that window.
    pub score: f32,
    /// The measure the score is expressed in.
    pub measure: Measure,
}

/// Scores of one shapelet against every window of a series.
///
/// Routed through the same streaming machinery as the fused transform
/// ([`crate::fused::shapelet_scores`]): the scores here are bit-identical
/// to the ones the transform pooled over, so the localized window provably
/// explains the feature value.
pub fn window_scores(
    bank: &ShapeletBank,
    group: usize,
    shapelet: usize,
    series: &TimeSeries,
) -> Vec<f32> {
    let g = &bank.groups()[group];
    let sw = ScaleWindows::new(series.values(), g.len, g.stride);
    // A quantized bank localizes through the same half-width kernels the
    // transform pooled with, so score == feature value holds per precision.
    if let Some(qps) = bank.quantized() {
        return crate::quant::shapelet_scores_quant(&sw, g.measure, &qps[group], shapelet);
    }
    shapelet_scores(&sw, g, &bank.precomputed()[group], shapelet)
}

/// Finds the best-matching window of `(group, shapelet)` in `series`.
pub fn best_match(
    bank: &ShapeletBank,
    group: usize,
    shapelet: usize,
    series: &TimeSeries,
) -> ShapeletMatch {
    let g = &bank.groups()[group];
    let scores = window_scores(bank, group, shapelet, series);
    let (mut best_w, mut best_s) = (0usize, scores[0]);
    for (w, &s) in scores.iter().enumerate().skip(1) {
        if g.measure.better(s, best_s) {
            best_s = s;
            best_w = w;
        }
    }
    ShapeletMatch {
        group,
        shapelet,
        start: best_w * g.stride,
        len: g.len,
        score: best_s,
        measure: g.measure,
    }
}

/// Finds the best match for a *feature column* (the layout analyzers see).
/// An out-of-range column is a request error, not a panic.
pub fn best_match_for_feature(
    bank: &ShapeletBank,
    feature_column: usize,
    series: &TimeSeries,
) -> tcsl_error::TcslResult<ShapeletMatch> {
    let (group, shapelet) = bank.feature_to_shapelet(feature_column)?;
    Ok(best_match(bank, group, shapelet, series))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShapeletConfig;
    use crate::transform::transform_series;
    use tcsl_tensor::rng::seeded;

    fn bank() -> ShapeletBank {
        let cfg = ShapeletConfig {
            lengths: vec![4],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut b = ShapeletBank::new(&cfg, 1);
        b.randomize(&mut seeded(1));
        b
    }

    #[test]
    fn planted_shapelet_is_located() {
        let b = bank();
        let planted: Vec<f32> = b.groups()[0].shapelets.row(0).to_vec();
        let mut vals = vec![9.0f32; 20];
        vals[11..15].copy_from_slice(&planted);
        let s = TimeSeries::univariate(vals);
        let m = best_match(&b, 0, 0, &s);
        assert_eq!(m.start, 11);
        assert_eq!(m.len, 4);
        assert!(
            m.score < 1e-3,
            "planted match should be ~exact, got {}",
            m.score
        );
    }

    #[test]
    fn match_score_equals_feature_value() {
        let b = bank();
        let s = TimeSeries::univariate((0..25).map(|i| (i as f32 * 0.7).sin()).collect());
        let feats = transform_series(&b, &s).unwrap();
        for col in 0..b.repr_dim() {
            let m = best_match_for_feature(&b, col, &s).unwrap();
            assert!(
                (m.score - feats[col]).abs() < 1e-5,
                "column {col}: match {} vs feature {}",
                m.score,
                feats[col]
            );
        }
    }

    #[test]
    fn window_scores_cover_all_positions() {
        let b = bank();
        let s = TimeSeries::univariate(vec![0.0; 12]);
        let scores = window_scores(&b, 0, 0, &s);
        assert_eq!(scores.len(), 12 - 4 + 1);
    }

    #[test]
    fn best_match_index_agrees_with_fused_pooling() {
        let b = bank();
        let s = TimeSeries::univariate((0..40).map(|i| (i as f32 * 0.37).cos()).collect());
        let pre = b.precomputed();
        for (gi, g) in b.groups().iter().enumerate() {
            let sw = ScaleWindows::new(s.values(), g.len, g.stride);
            let (pooled, args) = crate::fused::pool_group(&sw, g, &pre[gi]);
            for k in 0..g.k() {
                let m = best_match(&b, gi, k, &s);
                assert_eq!(m.start, args[k] * g.stride, "group {gi} shapelet {k}");
                assert_eq!(m.score, pooled[k], "group {gi} shapelet {k}");
            }
        }
    }

    #[test]
    fn cosine_match_prefers_direction() {
        // Shapelet = rising ramp; series has a rising ramp at a known spot.
        let cfg = ShapeletConfig {
            lengths: vec![4],
            k_per_group: 1,
            measures: vec![Measure::Cosine],
            stride: 1,
        };
        let mut b = ShapeletBank::new(&cfg, 1);
        b.groups_mut()[0].shapelets =
            tcsl_tensor::Tensor::from_vec(vec![-1.0, -0.3, 0.3, 1.0], [1, 4]);
        let mut vals = vec![0.1f32; 16];
        vals[6..10].copy_from_slice(&[-2.0, -0.6, 0.6, 2.0]); // scaled copy
        let s = TimeSeries::univariate(vals);
        let m = best_match(&b, 0, 0, &s);
        assert_eq!(m.start, 6);
        assert!(m.score > 0.99);
    }
}

//! Differentiable shapelet transform for training.
//!
//! Gradients only flow to the *shapelets* (and any head stacked on top) —
//! never to the input series — so the series side is precomputed once per
//! (series, scale, stride) as a [`ScaleWindows`] (padded buffer +
//! prefix-sum window norms) and captured by a
//! [`ShapeletDistanceOp`] custom tape op per group. The op runs the same
//! fused streaming kernel as inference in its forward and an arg-routed
//! analytic rule in its backward, so training never materializes the
//! `(N_w × D·len)` window matrix.
//!
//! The original eager-graph formulation — windows materialized into a
//! constant leaf, distances assembled from `matmul`/`relu`/`min_axis` ops —
//! survives unchanged as the [`oracle`] module. It is the reference the
//! fused path's values and gradients are pinned against in tests, and
//! stays selectable at runtime via [`DiffPath`] so benchmarks can compare
//! the two.
//!
//! The numerics match [`crate::transform`] exactly (verified by tests): the
//! same features come out of both paths, so a bank trained here can be used
//! by the fast path directly.

use std::sync::Arc;

use crate::bank::ShapeletBank;
use crate::diff_op::ShapeletDistanceOp;
use crate::fused::ScaleWindows;
use tcsl_autodiff::{Graph, VarId};
use tcsl_tensor::Tensor;

/// Which implementation of the differentiable transform to run.
///
/// Both produce matching features and gradients (pinned by proptests);
/// they differ in cost: [`DiffPath::Fused`] streams windows through the
/// custom op, [`DiffPath::Oracle`] materializes an `(N_w × D·len)` window
/// matrix per scale per series. The oracle exists for parity testing and
/// old-vs-new benchmarking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DiffPath {
    /// Custom-op path over the fused streaming kernel (the default).
    #[default]
    Fused,
    /// Reference eager-graph path (`unfold` + matmul leaves).
    Oracle,
}

/// Shapelet parameters bound into a graph: one `VarId` per group, in bank
/// order.
pub struct BoundBank {
    /// Group parameter nodes.
    pub group_vars: Vec<VarId>,
}

/// Binds every group's shapelet matrix as a trainable parameter.
pub fn bind_trainable(g: &mut Graph, bank: &ShapeletBank) -> BoundBank {
    BoundBank {
        group_vars: bank
            .groups()
            .iter()
            .map(|grp| g.param(grp.shapelets.clone()))
            .collect(),
    }
}

/// Binds a snapshot of shapelet values (one tensor per group, in bank
/// order) as trainable parameters. This is the worker-side entry point of
/// data-parallel training: each worker thread owns its own [`Graph`] and
/// binds the same shared read-only snapshot (e.g. a `ParamStore`'s current
/// values), so all workers differentiate against identical parameters.
pub fn bind_values(g: &mut Graph, values: &[Tensor]) -> BoundBank {
    BoundBank {
        group_vars: values.iter().map(|v| g.param(v.clone())).collect(),
    }
}

/// Binds every group's shapelet matrix as a frozen constant (freezing mode
/// with a differentiable head on top).
pub fn bind_frozen(g: &mut Graph, bank: &ShapeletBank) -> BoundBank {
    BoundBank {
        group_vars: bank
            .groups()
            .iter()
            .map(|grp| g.leaf(grp.shapelets.clone()))
            .collect(),
    }
}

/// Cache of series-side window state, shared across graph nodes.
///
/// One [`ScaleWindows`] is an `O(D·T)` pass (padding + prefix-sum norms);
/// every (scale, measure) group of the bank needs one, and during
/// contrastive training the *same* series value recurs across graph nodes
/// — full-grain views of a pair are bit-identical crops. Entries are keyed
/// by `(len, stride)` plus value equality of the series, so a hit requires
/// the cached padded buffer to start with exactly the series' values (the
/// [`ScaleWindows`] is a pure function of those three, so equal keys mean
/// an equal result).
///
/// The cache hands out `Arc`s: each [`ShapeletDistanceOp`] keeps its
/// window state alive for backward without copying it.
#[derive(Default)]
pub struct WindowCache {
    entries: Vec<CacheEntry>,
    hits: usize,
    misses: usize,
}

struct CacheEntry {
    /// Column count of the original (pre-padding) series.
    orig_cols: usize,
    sw: Arc<ScaleWindows>,
}

impl WindowCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the window state for `(series, len, stride)`, computing and
    /// retaining it on first use.
    pub fn get(&mut self, series: &Tensor, len: usize, stride: usize) -> Arc<ScaleWindows> {
        if let Some(e) = self.entries.iter().find(|e| e.matches(series, len, stride)) {
            self.hits += 1;
            tcsl_obs::counters::WINDOW_CACHE_HIT.add(1);
            return Arc::clone(&e.sw);
        }
        self.misses += 1;
        tcsl_obs::counters::WINDOW_CACHE_MISS.add(1);
        let sw = Arc::new(ScaleWindows::new(series, len, stride));
        self.entries.push(CacheEntry {
            orig_cols: series.cols(),
            sw: Arc::clone(&sw),
        });
        sw
    }

    /// Cache hits so far (same series value, scale and stride seen before).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far (each one computed a fresh [`ScaleWindows`]).
    pub fn misses(&self) -> usize {
        self.misses
    }
}

impl CacheEntry {
    fn matches(&self, series: &Tensor, len: usize, stride: usize) -> bool {
        // `padded` zero-extends the series at the tail, so prefix equality
        // over `orig_cols` columns is value equality of the series itself.
        self.sw.matches(len, stride)
            && self.orig_cols == series.cols()
            && self.sw.padded.rows() == series.rows()
            && (0..series.rows()).all(|v| self.sw.padded.row(v)[..self.orig_cols] == *series.row(v))
    }
}

/// Builds the feature row `(1, D_repr)` of one series against the bound
/// bank, sharing window state through `cache`. Pass the same cache across
/// the series of a batch (and across the views of a contrastive pair) to
/// reuse padded buffers and prefix-sum norms wherever series values repeat.
pub fn diff_features_cached(
    g: &mut Graph,
    bank: &ShapeletBank,
    bound: &BoundBank,
    series: &Tensor,
    cache: &mut WindowCache,
) -> VarId {
    assert_eq!(series.rows(), bank.d, "series/bank variable count mismatch");
    let mut parts: Vec<VarId> = Vec::with_capacity(bank.groups().len());
    for (gi, grp) in bank.groups().iter().enumerate() {
        let sw = cache.get(series, grp.len, grp.stride);
        let op = Arc::new(ShapeletDistanceOp::new(sw, grp.measure));
        let pooled = g.custom(op, &[bound.group_vars[gi]]);
        parts.push(pooled);
    }
    g.concat_cols(&parts)
}

/// Builds the feature row `(1, D_repr)` of one series against the bound
/// bank. `series` is the raw `(D, T)` value tensor.
pub fn diff_features(
    g: &mut Graph,
    bank: &ShapeletBank,
    bound: &BoundBank,
    series: &Tensor,
) -> VarId {
    let mut cache = WindowCache::new();
    diff_features_cached(g, bank, bound, series, &mut cache)
}

/// Builds the `(B, D_repr)` feature matrix of a batch of series, sharing
/// window state through `cache`.
pub fn diff_features_batch_cached(
    g: &mut Graph,
    bank: &ShapeletBank,
    bound: &BoundBank,
    batch: &[Tensor],
    cache: &mut WindowCache,
) -> VarId {
    assert!(!batch.is_empty(), "empty batch");
    let rows: Vec<VarId> = batch
        .iter()
        .map(|s| diff_features_cached(g, bank, bound, s, cache))
        .collect();
    g.concat_rows(&rows)
}

/// Builds the `(B, D_repr)` feature matrix of a batch of series.
pub fn diff_features_batch(
    g: &mut Graph,
    bank: &ShapeletBank,
    bound: &BoundBank,
    batch: &[Tensor],
) -> VarId {
    let mut cache = WindowCache::new();
    diff_features_batch_cached(g, bank, bound, batch, &mut cache)
}

/// Batch features via the selected [`DiffPath`]. The cache is only
/// consulted on the fused path (the oracle builds its own leaves).
pub fn diff_features_batch_via(
    path: DiffPath,
    g: &mut Graph,
    bank: &ShapeletBank,
    bound: &BoundBank,
    batch: &[Tensor],
    cache: &mut WindowCache,
) -> VarId {
    match path {
        DiffPath::Fused => diff_features_batch_cached(g, bank, bound, batch, cache),
        DiffPath::Oracle => oracle::diff_features_batch_oracle(g, bank, bound, batch),
    }
}

/// Writes updated parameter values (from an optimizer step) back into the
/// bank, in group order.
pub fn write_back(bank: &mut ShapeletBank, new_values: &[Tensor]) {
    assert_eq!(
        bank.groups().len(),
        new_values.len(),
        "group count mismatch"
    );
    for (g, v) in bank.groups_mut().iter_mut().zip(new_values) {
        assert!(
            g.shapelets.shape().same_as(v.shape()),
            "shapelet shape changed"
        );
        g.shapelets = v.clone();
    }
}

/// Reference implementation of the differentiable transform as an eager
/// tape-op graph over materialized window matrices.
///
/// This is the formulation the fused custom-op path replaced: per scale it
/// `unfold`s the series into an `(N_w × D·len)` constant leaf and builds
/// each measure from generic tape ops (`matmul_transb`, `relu`,
/// `min_axis`/`max_axis`, …), whose composed backward rules define the
/// gradients the fused path's analytic backward must reproduce. Kept for
/// parity tests and old-vs-new benchmarking — not used by training
/// defaults.
pub mod oracle {
    use super::BoundBank;
    use crate::bank::ShapeletBank;
    use crate::measure::Measure;
    use crate::transform::pad_to_len;
    use tcsl_autodiff::{Graph, VarId};
    use tcsl_tensor::reduce::Axis;
    use tcsl_tensor::window::{unfold, window_sq_norms};
    use tcsl_tensor::Tensor;

    /// Oracle counterpart of [`super::diff_features`].
    pub fn diff_features_oracle(
        g: &mut Graph,
        bank: &ShapeletBank,
        bound: &BoundBank,
        series: &Tensor,
    ) -> VarId {
        assert_eq!(series.rows(), bank.d, "series/bank variable count mismatch");
        let mut parts: Vec<VarId> = Vec::with_capacity(bank.groups().len());
        // Cache per-scale window leaves: measures of one scale share windows.
        let mut cached: Option<(usize, VarId, Vec<f32>)> = None;
        for (gi, grp) in bank.groups().iter().enumerate() {
            let (w_leaf, w_sq_norms) = match &cached {
                Some((len, id, norms)) if *len == grp.len => (*id, norms.clone()),
                _ => {
                    // Same prefix-sum window-norm machinery as the fused
                    // inference kernel — one O(T) pass instead of a pass over
                    // the materialized rows.
                    let padded = pad_to_len(series, grp.len);
                    let norms = window_sq_norms(&padded, grp.len, grp.stride);
                    let id = g.leaf(unfold(&padded, grp.len, grp.stride));
                    cached = Some((grp.len, id, norms.clone()));
                    (id, norms)
                }
            };
            let s_var = bound.group_vars[gi];
            let k = grp.k();
            let width = (bank.d * grp.len) as f32;
            let pooled = match grp.measure {
                Measure::Euclidean => {
                    // d² = ‖w‖² − 2·W·Sᵀ + ‖s‖², clamped at 0, normalized, √.
                    let cross = g.matmul_transb(w_leaf, s_var);
                    let neg2 = g.mul_scalar(cross, -2.0);
                    let wn = g.leaf(Tensor::from_vec(w_sq_norms.clone(), [w_sq_norms.len()]));
                    let with_w = g.add_col_vec(neg2, wn);
                    let s_sq = g.square(s_var);
                    let sn = g.sum_axis(s_sq, Axis::Cols);
                    let d2 = g.add_row_vec(with_w, sn);
                    let clamped = g.relu(d2);
                    let normed = g.mul_scalar(clamped, 1.0 / width);
                    let dist = g.sqrt_eps(normed, 1e-8);
                    g.min_axis(dist, Axis::Rows)
                }
                Measure::Cosine => {
                    // Window rows normalized eagerly (no grad through them).
                    let wn_val = {
                        let w = g.value(w_leaf).clone();
                        let mut out = w;
                        for i in 0..out.rows() {
                            let n = (out.row(i).iter().map(|&x| x * x).sum::<f32>() + 1e-12).sqrt();
                            for x in out.row_mut(i) {
                                *x /= n;
                            }
                        }
                        out
                    };
                    let wn_leaf = g.leaf(wn_val);
                    let sn = g.row_normalize(s_var, 1e-12);
                    let sim = g.matmul_transb(wn_leaf, sn);
                    g.max_axis(sim, Axis::Rows)
                }
                Measure::CrossCorrelation => {
                    let cross = g.matmul_transb(w_leaf, s_var);
                    let sim = g.mul_scalar(cross, 1.0 / width);
                    g.max_axis(sim, Axis::Rows)
                }
            };
            parts.push(g.reshape(pooled, [1, k]));
        }
        g.concat_cols(&parts)
    }

    /// Oracle counterpart of [`super::diff_features_batch`].
    pub fn diff_features_batch_oracle(
        g: &mut Graph,
        bank: &ShapeletBank,
        bound: &BoundBank,
        batch: &[Tensor],
    ) -> VarId {
        assert!(!batch.is_empty(), "empty batch");
        let rows: Vec<VarId> = batch
            .iter()
            .map(|s| diff_features_oracle(g, bank, bound, s))
            .collect();
        g.concat_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::{diff_features_batch_oracle, diff_features_oracle};
    use super::*;
    use crate::config::ShapeletConfig;
    use crate::measure::Measure;
    use crate::transform::transform_series;
    use tcsl_data::TimeSeries;
    use tcsl_tensor::rng::seeded;

    fn bank(d: usize) -> ShapeletBank {
        let cfg = ShapeletConfig {
            lengths: vec![3, 6],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut b = ShapeletBank::new(&cfg, d);
        b.randomize(&mut seeded(3));
        b
    }

    #[test]
    fn diff_path_matches_fast_path() {
        let b = bank(2);
        let mut rng = seeded(4);
        let series = TimeSeries::new(Tensor::randn([2, 20], &mut rng));
        let fast = transform_series(&b, &series).unwrap();

        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let feats = diff_features(&mut g, &b, &bound, series.values());
        let slow = g.value(feats);
        assert_eq!(slow.shape().dims(), &[1, b.repr_dim()]);
        for (i, (&f, &s)) in fast.iter().zip(slow.as_slice()).enumerate() {
            assert!((f - s).abs() < 1e-4, "feature {i}: fast={f} diff={s}");
        }
    }

    #[test]
    fn diff_path_matches_fast_path_on_short_series() {
        let b = bank(1);
        let series = TimeSeries::univariate(vec![0.4, -0.2]); // shorter than both scales
        let fast = transform_series(&b, &series).unwrap();
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let feats = diff_features(&mut g, &b, &bound, series.values());
        for (&f, &s) in fast.iter().zip(g.value(feats).as_slice()) {
            assert!((f - s).abs() < 1e-4);
        }
    }

    #[test]
    fn fused_path_matches_oracle_path() {
        // Same bound parameters, same series → same features from the
        // custom-op path and the eager-graph oracle.
        for d in [1, 2] {
            let b = bank(d);
            let mut rng = seeded(14 + d as u64);
            let series = Tensor::randn([d, 22], &mut rng);

            let mut g = Graph::new();
            let bound = bind_trainable(&mut g, &b);
            let fused = diff_features(&mut g, &b, &bound, &series);
            let oracle = diff_features_oracle(&mut g, &b, &bound, &series);
            let (fv, ov) = (g.value(fused).clone(), g.value(oracle).clone());
            assert_eq!(fv.shape().dims(), ov.shape().dims());
            for (i, (&f, &o)) in fv.as_slice().iter().zip(ov.as_slice()).enumerate() {
                assert!((f - o).abs() < 1e-4, "feature {i}: fused={f} oracle={o}");
            }
        }
    }

    #[test]
    fn window_cache_reuses_state_across_identical_series() {
        let b = bank(1);
        let mut rng = seeded(15);
        let series = Tensor::randn([1, 30], &mut rng);
        let other = Tensor::randn([1, 30], &mut rng);
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let mut cache = WindowCache::new();
        // Bank has 2 scales × 3 measures: 6 lookups per series, 2 distinct
        // (len, stride) keys per distinct series value.
        diff_features_cached(&mut g, &b, &bound, &series, &mut cache);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 4);
        // The same series value again: all lookups hit.
        diff_features_cached(&mut g, &b, &bound, &series, &mut cache);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 10);
        // A different series value misses.
        diff_features_cached(&mut g, &b, &bound, &other, &mut cache);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn diff_path_selector_routes_both_paths() {
        let b = bank(1);
        let mut rng = seeded(16);
        let batch = [
            Tensor::randn([1, 18], &mut rng),
            Tensor::randn([1, 18], &mut rng),
        ];
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let mut cache = WindowCache::new();
        let fused =
            diff_features_batch_via(DiffPath::Fused, &mut g, &b, &bound, &batch, &mut cache);
        let oracle =
            diff_features_batch_via(DiffPath::Oracle, &mut g, &b, &bound, &batch, &mut cache);
        let (fv, ov) = (g.value(fused).clone(), g.value(oracle).clone());
        for (&f, &o) in fv.as_slice().iter().zip(ov.as_slice()) {
            assert!((f - o).abs() < 1e-4);
        }
        assert_eq!(DiffPath::default(), DiffPath::Fused);
    }

    #[test]
    fn gradients_reach_every_group() {
        let b = bank(1);
        let mut rng = seeded(5);
        let series = TimeSeries::new(Tensor::randn([1, 24], &mut rng));
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let feats = diff_features(&mut g, &b, &bound, series.values());
        let sq = g.square(feats);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for (gi, &id) in bound.group_vars.iter().enumerate() {
            let grad = grads
                .get(id)
                .unwrap_or_else(|| panic!("no grad for group {gi}"));
            assert!(grad.norm_sq() > 0.0, "zero grad for group {gi}");
        }
    }

    #[test]
    fn frozen_bank_gets_no_gradients() {
        let b = bank(1);
        let mut rng = seeded(6);
        let series = TimeSeries::new(Tensor::randn([1, 24], &mut rng));
        let mut g = Graph::new();
        let bound = bind_frozen(&mut g, &b);
        let feats = diff_features(&mut g, &b, &bound, series.values());
        let loss = g.mean_all(feats);
        let grads = g.backward(loss);
        assert!(grads.get(bound.group_vars[0]).is_none());
    }

    #[test]
    fn shapelet_gradcheck_through_full_transform() {
        // Finite-difference check of d(loss)/d(shapelets) through the whole
        // euclidean+cosine+xcorr pipeline (fused custom-op path).
        let cfg = ShapeletConfig {
            lengths: vec![3],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut b = ShapeletBank::new(&cfg, 1);
        b.randomize(&mut seeded(7));
        let mut rng = seeded(8);
        let series = Tensor::randn([1, 10], &mut rng);

        let inputs: Vec<Tensor> = b.groups().iter().map(|g| g.shapelets.clone()).collect();
        let report = tcsl_autodiff::gradcheck::gradcheck(&inputs, 1e-3, |g, xs| {
            let bound = BoundBank {
                group_vars: xs.iter().map(|x| g.param(x.clone())).collect(),
            };
            let feats = diff_features(g, &b, &bound, &series);
            let sq = g.square(feats);
            let loss = g.mean_all(sq);
            (bound.group_vars.clone(), loss)
        });
        assert!(
            report.passes(3e-2),
            "gradcheck failed: abs={} rel={}",
            report.max_abs_err,
            report.max_rel_err
        );
    }

    #[test]
    fn fused_gradients_match_oracle_gradients() {
        // Same loss through both paths → same parameter gradients (the
        // custom op's analytic backward vs the oracle graph's composed
        // backward rules).
        let b = bank(2);
        let mut rng = seeded(17);
        let batch = [
            Tensor::randn([2, 21], &mut rng),
            Tensor::randn([2, 17], &mut rng),
        ];
        let grads_of = |use_oracle: bool| {
            let mut g = Graph::new();
            let bound = bind_trainable(&mut g, &b);
            let feats = if use_oracle {
                diff_features_batch_oracle(&mut g, &b, &bound, &batch)
            } else {
                diff_features_batch(&mut g, &b, &bound, &batch)
            };
            let sq = g.square(feats);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            bound
                .group_vars
                .iter()
                .map(|&id| grads.get(id).unwrap().clone())
                .collect::<Vec<_>>()
        };
        let fused = grads_of(false);
        let oracle = grads_of(true);
        for (gi, (f, o)) in fused.iter().zip(&oracle).enumerate() {
            for (i, (&fv, &ov)) in f.as_slice().iter().zip(o.as_slice()).enumerate() {
                assert!(
                    (fv - ov).abs() < 1e-4,
                    "group {gi} grad {i}: fused={fv} oracle={ov}"
                );
            }
        }
    }

    #[test]
    fn batch_features_stack_rows() {
        let b = bank(1);
        let mut rng = seeded(9);
        let s1 = Tensor::randn([1, 15], &mut rng);
        let s2 = Tensor::randn([1, 18], &mut rng);
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let feats = diff_features_batch(&mut g, &b, &bound, &[s1.clone(), s2]);
        assert_eq!(g.value(feats).rows(), 2);
        // Row 0 equals the single-series features of s1.
        let mut g2 = Graph::new();
        let bound2 = bind_trainable(&mut g2, &b);
        let f1 = diff_features(&mut g2, &b, &bound2, &s1);
        for (a, bv) in g.value(feats).row(0).iter().zip(g2.value(f1).as_slice()) {
            assert!((a - bv).abs() < 1e-6);
        }
    }

    #[test]
    fn bind_values_matches_bind_trainable() {
        let b = bank(1);
        let mut rng = seeded(10);
        let series = TimeSeries::new(Tensor::randn([1, 20], &mut rng));
        let snapshot: Vec<Tensor> = b.groups().iter().map(|g| g.shapelets.clone()).collect();

        let mut g1 = Graph::new();
        let bound1 = bind_trainable(&mut g1, &b);
        let f1 = diff_features(&mut g1, &b, &bound1, series.values());

        let mut g2 = Graph::new();
        let bound2 = bind_values(&mut g2, &snapshot);
        let f2 = diff_features(&mut g2, &b, &bound2, series.values());

        assert_eq!(g1.value(f1), g2.value(f2));
        // Snapshot-bound parameters still receive gradients.
        let sq = g2.square(f2);
        let loss = g2.mean_all(sq);
        let grads = g2.backward(loss);
        assert!(grads.get(bound2.group_vars[0]).is_some());
    }

    #[test]
    fn write_back_updates_bank() {
        let mut b = bank(1);
        let new: Vec<Tensor> = b
            .groups()
            .iter()
            .map(|g| Tensor::full(g.shapelets.shape().clone(), 0.25))
            .collect();
        write_back(&mut b, &new);
        assert!(b
            .groups()
            .iter()
            .all(|g| g.shapelets.as_slice().iter().all(|&x| x == 0.25)));
    }
}

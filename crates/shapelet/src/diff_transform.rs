//! Differentiable shapelet transform for training.
//!
//! Gradients only flow to the *shapelets* (and any head stacked on top) —
//! never to the input series — so window matrices are computed eagerly and
//! inserted as constant leaves; only the shapelet-side algebra is recorded
//! on the tape. Min/max pooling uses the arg-routed subgradient.
//!
//! The numerics match [`crate::transform`] exactly (verified by tests): the
//! same features come out of both paths, so a bank trained here can be used
//! by the fast path directly.

use crate::bank::ShapeletBank;
use crate::measure::Measure;
use crate::transform::pad_to_len;
use tcsl_autodiff::{Graph, VarId};
use tcsl_tensor::reduce::Axis;
use tcsl_tensor::window::{unfold, window_sq_norms};
use tcsl_tensor::Tensor;

/// Shapelet parameters bound into a graph: one `VarId` per group, in bank
/// order.
pub struct BoundBank {
    /// Group parameter nodes.
    pub group_vars: Vec<VarId>,
}

/// Binds every group's shapelet matrix as a trainable parameter.
pub fn bind_trainable(g: &mut Graph, bank: &ShapeletBank) -> BoundBank {
    BoundBank {
        group_vars: bank
            .groups()
            .iter()
            .map(|grp| g.param(grp.shapelets.clone()))
            .collect(),
    }
}

/// Binds a snapshot of shapelet values (one tensor per group, in bank
/// order) as trainable parameters. This is the worker-side entry point of
/// data-parallel training: each worker thread owns its own [`Graph`] and
/// binds the same shared read-only snapshot (e.g. a `ParamStore`'s current
/// values), so all workers differentiate against identical parameters.
pub fn bind_values(g: &mut Graph, values: &[Tensor]) -> BoundBank {
    BoundBank {
        group_vars: values.iter().map(|v| g.param(v.clone())).collect(),
    }
}

/// Binds every group's shapelet matrix as a frozen constant (freezing mode
/// with a differentiable head on top).
pub fn bind_frozen(g: &mut Graph, bank: &ShapeletBank) -> BoundBank {
    BoundBank {
        group_vars: bank
            .groups()
            .iter()
            .map(|grp| g.leaf(grp.shapelets.clone()))
            .collect(),
    }
}

/// Builds the feature row `(1, D_repr)` of one series against the bound
/// bank. `series` is the raw `(D, T)` value tensor.
pub fn diff_features(
    g: &mut Graph,
    bank: &ShapeletBank,
    bound: &BoundBank,
    series: &Tensor,
) -> VarId {
    assert_eq!(series.rows(), bank.d, "series/bank variable count mismatch");
    let mut parts: Vec<VarId> = Vec::with_capacity(bank.groups().len());
    // Cache per-scale window leaves: measures of one scale share windows.
    let mut cached: Option<(usize, VarId, Vec<f32>)> = None;
    for (gi, grp) in bank.groups().iter().enumerate() {
        let (w_leaf, w_sq_norms) = match &cached {
            Some((len, id, norms)) if *len == grp.len => (*id, norms.clone()),
            _ => {
                // Same prefix-sum window-norm machinery as the fused
                // inference kernel — one O(T) pass instead of a pass over
                // the materialized rows.
                let padded = pad_to_len(series, grp.len);
                let norms = window_sq_norms(&padded, grp.len, grp.stride);
                let id = g.leaf(unfold(&padded, grp.len, grp.stride));
                cached = Some((grp.len, id, norms.clone()));
                (id, norms)
            }
        };
        let s_var = bound.group_vars[gi];
        let k = grp.k();
        let width = (bank.d * grp.len) as f32;
        let pooled = match grp.measure {
            Measure::Euclidean => {
                // d² = ‖w‖² − 2·W·Sᵀ + ‖s‖², clamped at 0, normalized, √.
                let cross = g.matmul_transb(w_leaf, s_var);
                let neg2 = g.mul_scalar(cross, -2.0);
                let wn = g.leaf(Tensor::from_vec(w_sq_norms.clone(), [w_sq_norms.len()]));
                let with_w = g.add_col_vec(neg2, wn);
                let s_sq = g.square(s_var);
                let sn = g.sum_axis(s_sq, Axis::Cols);
                let d2 = g.add_row_vec(with_w, sn);
                let clamped = g.relu(d2);
                let normed = g.mul_scalar(clamped, 1.0 / width);
                let dist = g.sqrt_eps(normed, 1e-8);
                g.min_axis(dist, Axis::Rows)
            }
            Measure::Cosine => {
                // Window rows normalized eagerly (no grad through them).
                let wn_val = {
                    let w = g.value(w_leaf).clone();
                    let mut out = w;
                    for i in 0..out.rows() {
                        let n = (out.row(i).iter().map(|&x| x * x).sum::<f32>() + 1e-12).sqrt();
                        for x in out.row_mut(i) {
                            *x /= n;
                        }
                    }
                    out
                };
                let wn_leaf = g.leaf(wn_val);
                let sn = g.row_normalize(s_var, 1e-12);
                let sim = g.matmul_transb(wn_leaf, sn);
                g.max_axis(sim, Axis::Rows)
            }
            Measure::CrossCorrelation => {
                let cross = g.matmul_transb(w_leaf, s_var);
                let sim = g.mul_scalar(cross, 1.0 / width);
                g.max_axis(sim, Axis::Rows)
            }
        };
        parts.push(g.reshape(pooled, [1, k]));
    }
    g.concat_cols(&parts)
}

/// Builds the `(B, D_repr)` feature matrix of a batch of series.
pub fn diff_features_batch(
    g: &mut Graph,
    bank: &ShapeletBank,
    bound: &BoundBank,
    batch: &[Tensor],
) -> VarId {
    assert!(!batch.is_empty(), "empty batch");
    let rows: Vec<VarId> = batch
        .iter()
        .map(|s| diff_features(g, bank, bound, s))
        .collect();
    g.concat_rows(&rows)
}

/// Writes updated parameter values (from an optimizer step) back into the
/// bank, in group order.
pub fn write_back(bank: &mut ShapeletBank, new_values: &[Tensor]) {
    assert_eq!(
        bank.groups().len(),
        new_values.len(),
        "group count mismatch"
    );
    for (g, v) in bank.groups_mut().iter_mut().zip(new_values) {
        assert!(
            g.shapelets.shape().same_as(v.shape()),
            "shapelet shape changed"
        );
        g.shapelets = v.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShapeletConfig;
    use crate::transform::transform_series;
    use tcsl_data::TimeSeries;
    use tcsl_tensor::rng::seeded;

    fn bank(d: usize) -> ShapeletBank {
        let cfg = ShapeletConfig {
            lengths: vec![3, 6],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut b = ShapeletBank::new(&cfg, d);
        b.randomize(&mut seeded(3));
        b
    }

    #[test]
    fn diff_path_matches_fast_path() {
        let b = bank(2);
        let mut rng = seeded(4);
        let series = TimeSeries::new(Tensor::randn([2, 20], &mut rng));
        let fast = transform_series(&b, &series);

        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let feats = diff_features(&mut g, &b, &bound, series.values());
        let slow = g.value(feats);
        assert_eq!(slow.shape().dims(), &[1, b.repr_dim()]);
        for (i, (&f, &s)) in fast.iter().zip(slow.as_slice()).enumerate() {
            assert!((f - s).abs() < 1e-4, "feature {i}: fast={f} diff={s}");
        }
    }

    #[test]
    fn diff_path_matches_fast_path_on_short_series() {
        let b = bank(1);
        let series = TimeSeries::univariate(vec![0.4, -0.2]); // shorter than both scales
        let fast = transform_series(&b, &series);
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let feats = diff_features(&mut g, &b, &bound, series.values());
        for (&f, &s) in fast.iter().zip(g.value(feats).as_slice()) {
            assert!((f - s).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_reach_every_group() {
        let b = bank(1);
        let mut rng = seeded(5);
        let series = TimeSeries::new(Tensor::randn([1, 24], &mut rng));
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let feats = diff_features(&mut g, &b, &bound, series.values());
        let sq = g.square(feats);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for (gi, &id) in bound.group_vars.iter().enumerate() {
            let grad = grads
                .get(id)
                .unwrap_or_else(|| panic!("no grad for group {gi}"));
            assert!(grad.norm_sq() > 0.0, "zero grad for group {gi}");
        }
    }

    #[test]
    fn frozen_bank_gets_no_gradients() {
        let b = bank(1);
        let mut rng = seeded(6);
        let series = TimeSeries::new(Tensor::randn([1, 24], &mut rng));
        let mut g = Graph::new();
        let bound = bind_frozen(&mut g, &b);
        let feats = diff_features(&mut g, &b, &bound, series.values());
        let loss = g.mean_all(feats);
        let grads = g.backward(loss);
        assert!(grads.get(bound.group_vars[0]).is_none());
    }

    #[test]
    fn shapelet_gradcheck_through_full_transform() {
        // Finite-difference check of d(loss)/d(shapelets) through the whole
        // euclidean+cosine+xcorr pipeline.
        let cfg = ShapeletConfig {
            lengths: vec![3],
            k_per_group: 2,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut b = ShapeletBank::new(&cfg, 1);
        b.randomize(&mut seeded(7));
        let mut rng = seeded(8);
        let series = Tensor::randn([1, 10], &mut rng);

        let inputs: Vec<Tensor> = b.groups().iter().map(|g| g.shapelets.clone()).collect();
        let report = tcsl_autodiff::gradcheck::gradcheck(&inputs, 1e-3, |g, xs| {
            let bound = BoundBank {
                group_vars: xs.iter().map(|x| g.param(x.clone())).collect(),
            };
            let feats = diff_features(g, &b, &bound, &series);
            let sq = g.square(feats);
            let loss = g.mean_all(sq);
            (bound.group_vars.clone(), loss)
        });
        assert!(
            report.passes(3e-2),
            "gradcheck failed: abs={} rel={}",
            report.max_abs_err,
            report.max_rel_err
        );
    }

    #[test]
    fn batch_features_stack_rows() {
        let b = bank(1);
        let mut rng = seeded(9);
        let s1 = Tensor::randn([1, 15], &mut rng);
        let s2 = Tensor::randn([1, 18], &mut rng);
        let mut g = Graph::new();
        let bound = bind_trainable(&mut g, &b);
        let feats = diff_features_batch(&mut g, &b, &bound, &[s1.clone(), s2]);
        assert_eq!(g.value(feats).rows(), 2);
        // Row 0 equals the single-series features of s1.
        let mut g2 = Graph::new();
        let bound2 = bind_trainable(&mut g2, &b);
        let f1 = diff_features(&mut g2, &b, &bound2, &s1);
        for (a, bv) in g.value(feats).row(0).iter().zip(g2.value(f1).as_slice()) {
            assert!((a - bv).abs() < 1e-6);
        }
    }

    #[test]
    fn bind_values_matches_bind_trainable() {
        let b = bank(1);
        let mut rng = seeded(10);
        let series = TimeSeries::new(Tensor::randn([1, 20], &mut rng));
        let snapshot: Vec<Tensor> = b.groups().iter().map(|g| g.shapelets.clone()).collect();

        let mut g1 = Graph::new();
        let bound1 = bind_trainable(&mut g1, &b);
        let f1 = diff_features(&mut g1, &b, &bound1, series.values());

        let mut g2 = Graph::new();
        let bound2 = bind_values(&mut g2, &snapshot);
        let f2 = diff_features(&mut g2, &b, &bound2, series.values());

        assert_eq!(g1.value(f1), g2.value(f2));
        // Snapshot-bound parameters still receive gradients.
        let sq = g2.square(f2);
        let loss = g2.mean_all(sq);
        let grads = g2.backward(loss);
        assert!(grads.get(bound2.group_vars[0]).is_some());
    }

    #[test]
    fn write_back_updates_bank() {
        let mut b = bank(1);
        let new: Vec<Tensor> = b
            .groups()
            .iter()
            .map(|g| Tensor::full(g.shapelets.shape().clone(), 0.25))
            .collect();
        write_back(&mut b, &new);
        assert!(b
            .groups()
            .iter()
            .all(|g| g.shapelets.as_slice().iter().all(|&x| x == 0.25)));
    }
}

//! Shapelet initialization by diverse subsequence sampling.
//!
//! Shapelets start as real subsequences of the training data (the standard
//! warm start for learned shapelets): for each group, sample a pool of
//! candidate windows and keep a diverse subset via greedy farthest-point
//! selection, so the initial bank already spans the data's local patterns.

// Exempt from the error wall (clippy.toml) — training-side initialization: inputs were validated
// by the trainer before any candidate is sampled.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::bank::ShapeletBank;
use rand::Rng;
use tcsl_data::Dataset;
use tcsl_tensor::rng::index;
use tcsl_tensor::Tensor;

/// Initializes every group of `bank` from subsequences of `ds`.
///
/// `oversample` controls the candidate pool size (`oversample × K` windows
/// per group; 4 is a good default).
pub fn init_from_data(
    bank: &mut ShapeletBank,
    ds: &Dataset,
    oversample: usize,
    rng: &mut impl Rng,
) {
    assert!(!ds.is_empty(), "cannot initialize from an empty dataset");
    assert_eq!(ds.n_vars(), bank.d, "dataset/bank variable count mismatch");
    assert!(oversample >= 1, "oversample must be at least 1");
    let d = bank.d;
    for g in bank.groups_mut() {
        let k = g.k();
        let width = d * g.len;
        let n_candidates = (oversample * k).max(k);
        let mut candidates = Vec::with_capacity(n_candidates);
        for _ in 0..n_candidates {
            let si = index(rng, ds.len());
            let series = ds.series(si);
            let padded = crate::transform::pad_to_len(series.values(), g.len);
            let max_start = padded.cols() - g.len;
            let start = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            };
            let window = tcsl_tensor::window::window_at(&padded, start, g.len);
            candidates.push(window.reshape([width]));
        }
        let chosen = farthest_point_subset(&candidates, k, rng);
        let mut data = Vec::with_capacity(k * width);
        for &c in &chosen {
            data.extend_from_slice(candidates[c].as_slice());
        }
        g.shapelets = Tensor::from_vec(data, [k, width]);
    }
}

/// Greedy farthest-point selection of `k` diverse rows.
fn farthest_point_subset(candidates: &[Tensor], k: usize, rng: &mut impl Rng) -> Vec<usize> {
    assert!(!candidates.is_empty());
    let k = k.min(candidates.len());
    let mut chosen = Vec::with_capacity(k);
    chosen.push(index(rng, candidates.len()));
    // min squared distance from each candidate to the chosen set.
    let mut min_d2: Vec<f32> = candidates
        .iter()
        .map(|c| c.sub(&candidates[chosen[0]]).norm_sq())
        .collect();
    while chosen.len() < k {
        let next = min_d2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite distances"))
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        chosen.push(next);
        for (i, c) in candidates.iter().enumerate() {
            let d2 = c.sub(&candidates[next]).norm_sq();
            if d2 < min_d2[i] {
                min_d2[i] = d2;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShapeletConfig;
    use crate::measure::Measure;
    use tcsl_data::TimeSeries;
    use tcsl_tensor::rng::seeded;

    fn dataset() -> Dataset {
        let series = (0..6)
            .map(|i| {
                TimeSeries::univariate(
                    (0..32)
                        .map(|t| ((t * (i + 1)) as f32 * 0.2).sin())
                        .collect(),
                )
            })
            .collect();
        Dataset::unlabeled("init", series)
    }

    fn bank() -> ShapeletBank {
        let cfg = ShapeletConfig {
            lengths: vec![4, 8],
            k_per_group: 3,
            measures: vec![Measure::Euclidean, Measure::Cosine],
            stride: 1,
        };
        ShapeletBank::new(&cfg, 1)
    }

    #[test]
    fn init_fills_all_groups_with_real_subsequences() {
        let ds = dataset();
        let mut b = bank();
        init_from_data(&mut b, &ds, 4, &mut seeded(1));
        for g in b.groups() {
            // No group left at its zero initialization.
            assert!(g.shapelets.norm_sq() > 0.0);
            // Every shapelet is bounded like the data (|sin| ≤ 1).
            assert!(g
                .shapelets
                .as_slice()
                .iter()
                .all(|&x| x.abs() <= 1.0 + 1e-5));
        }
    }

    #[test]
    fn init_is_deterministic_in_seed() {
        let ds = dataset();
        let mut b1 = bank();
        let mut b2 = bank();
        init_from_data(&mut b1, &ds, 4, &mut seeded(9));
        init_from_data(&mut b2, &ds, 4, &mut seeded(9));
        for (g1, g2) in b1.groups().iter().zip(b2.groups()) {
            assert_eq!(g1.shapelets, g2.shapelets);
        }
    }

    #[test]
    fn chosen_shapelets_are_diverse() {
        let ds = dataset();
        let mut b = bank();
        init_from_data(&mut b, &ds, 8, &mut seeded(2));
        // Within one group, no two shapelets should be identical.
        for g in b.groups() {
            for i in 0..g.k() {
                for j in (i + 1)..g.k() {
                    let di = Tensor::from_vec(g.shapelets.row(i).to_vec(), [g.shapelets.cols()]);
                    let dj = Tensor::from_vec(g.shapelets.row(j).to_vec(), [g.shapelets.cols()]);
                    assert!(di.sub(&dj).norm_sq() > 1e-8, "duplicate shapelets {i},{j}");
                }
            }
        }
    }

    #[test]
    fn farthest_point_picks_extremes() {
        let candidates = vec![
            Tensor::from_vec(vec![0.0], [1]),
            Tensor::from_vec(vec![0.1], [1]),
            Tensor::from_vec(vec![10.0], [1]),
        ];
        let mut rng = seeded(3);
        let chosen = farthest_point_subset(&candidates, 2, &mut rng);
        // Whatever the random start, the two chosen points must include one
        // from each cluster.
        let vals: Vec<f32> = chosen
            .iter()
            .map(|&i| candidates[i].as_slice()[0])
            .collect();
        assert!(vals.iter().any(|&v| v > 5.0));
        assert!(vals.iter().any(|&v| v < 5.0));
    }
}

//! Quantized inference bank: half-width tap storage for the fused transform.
//!
//! The fused transform is memory-traffic-bound at serving shapes — the hot
//! stream is the repacked tap rows, re-read once per window. This module
//! stores that stream at half width ([`QuantScheme::F16`] or
//! [`QuantScheme::I16`] with a per-shapelet scale) and pools through the
//! mixed-precision kernels of [`tcsl_tensor::quant`], which dequantize
//! in-register and accumulate in f32.
//!
//! Contract with the rest of the stack:
//!
//! * **Quantization is an explicit post-training step**
//!   ([`crate::ShapeletBank::quantize`]). Training, autodiff and the unfold
//!   oracle stay pure f32.
//! * **The bank's f32 view is the dequantized view.** After quantization,
//!   `group.shapelets` holds the *dequantized* values — so the oracle path,
//!   best-match localization and any norm derived from the f32 tensor are
//!   consistent with what the quantized kernels compute. Precision is lost
//!   exactly once, at quantization time.
//! * **Same pooling semantics.** [`pool_measure_quant`] mirrors
//!   [`crate::fused::pool_measure`]'s fused/blocked dispatch, tiling, and
//!   argmin tie-breaking (`w == 0 || measure.better(..)`) exactly; only the
//!   dot kernel differs.

use crate::fused::{score, ScaleWindows, BLOCKED_SERIES_BYTES, TILE_WINDOWS};
use crate::measure::Measure;
use tcsl_tensor::matmul::{count_dot_dispatch, dot};
use tcsl_tensor::quant::{
    count_quant_dot_dispatch, dequantize_f16, dequantize_i16, dot_f16, dot_i16, f16_to_f32,
    i16_scale, paired_kernel_available, quantize_f16, quantize_i16, window_dot2_f16,
    window_dot2_i16, window_dot2x4_f16, window_dot2x4_i16, window_dot4_f16, window_dot4_i16,
    window_dot_f16, window_dot_i16, QuantScheme, QUANT_MIN_LEN,
};
use tcsl_tensor::window::{window_dot, window_dot4};
use tcsl_tensor::Tensor;

/// Inference precision of a [`crate::ShapeletBank`]: full f32, or one of the
/// half-width [`QuantScheme`]s. Threaded from `CslConfig` so a pipeline can
/// request quantization as part of training, and persisted by model format
/// v3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BankPrecision {
    /// Full-precision f32 taps (the training representation; default).
    #[default]
    Full,
    /// IEEE 754 binary16 taps.
    F16,
    /// Fixed-point i16 taps with a per-shapelet scale.
    I16,
}

impl BankPrecision {
    /// Stable lowercase name used by config parsing, the model format and
    /// bench JSON (`"f32"`, `"f16"`, `"i16"`).
    pub fn name(self) -> &'static str {
        match self {
            BankPrecision::Full => "f32",
            BankPrecision::F16 => "f16",
            BankPrecision::I16 => "i16",
        }
    }

    /// Parses [`Self::name`] output; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(BankPrecision::Full),
            "f16" => Some(BankPrecision::F16),
            "i16" => Some(BankPrecision::I16),
            _ => None,
        }
    }

    /// The quantization scheme this precision stores taps in (`None` for
    /// full precision).
    pub fn scheme(self) -> Option<QuantScheme> {
        match self {
            BankPrecision::Full => None,
            BankPrecision::F16 => Some(QuantScheme::F16),
            BankPrecision::I16 => Some(QuantScheme::I16),
        }
    }
}

/// Half-width tap rows of one group, packed with the same padded row stride
/// as [`crate::GroupPrecomp`].
#[derive(Clone, Debug)]
enum QuantTaps {
    /// binary16 bit patterns.
    F16(Vec<u16>),
    /// Fixed-point values plus the per-shapelet-row scale.
    I16 { q: Vec<i16>, scales: Vec<f32> },
}

/// Quantized sibling of [`crate::GroupPrecomp`]: the shapelet-side state of
/// one group with taps stored at half width. Norms are computed from the
/// **dequantized** taps, so they agree bit-for-bit with a
/// [`crate::GroupPrecomp`] built from the bank's (dequantized) f32 view.
#[derive(Clone, Debug)]
pub struct QuantizedPrecomp {
    /// Squared Euclidean norm `‖s_k‖²` of every (dequantized) shapelet row.
    pub sq_norms: Vec<f32>,
    /// `1 / √(‖s_k‖² + 1e-12)` per row.
    pub inv_norms: Vec<f32>,
    taps: QuantTaps,
    /// Padded **dequantized f32** tap rows, kept only when `row_len` is
    /// below [`QUANT_MIN_LEN`]. Sub-threshold rows would hit the scalar
    /// mixed-precision fallback — a per-element software conversion per
    /// window that costs far more than the f32 scalar kernel — and a row
    /// that small is cache-resident anyway, so half-width storage saves no
    /// traffic. Pooling routes such groups through the plain f32 kernels
    /// on these rows; the values are the dequantized view, so the result
    /// is exactly "f32 on the dequantized bank".
    deq_taps: Option<Vec<f32>>,
    tap_stride: usize,
    row_len: usize,
}

/// Row length (in elements) above which the fused quantized engine streams
/// taps in 2-row instead of 4-row blocks. A 4-row half-width block of a
/// longer row (> 4 · 3072 · 2 B = 24 KiB) no longer fits in a 32 KiB L1d
/// alongside the window stream, so every window pass spills the taps it
/// just read; halving the block keeps the hot tap set resident. Only
/// applied when the pair kernels still share window loads
/// ([`paired_kernel_available`]) — see [`pair_block`].
pub const PAIR_BLOCK_MIN_ROW: usize = 3072;

/// Whether pooling/localization of this group should use 2-row tap blocks.
/// One deterministic decision per (group, machine): [`pool_quant_fused`] and
/// [`shapelet_scores_quant`] both derive their blocking from it, which is
/// what keeps localization scores bit-identical to pooled values.
fn pair_block(qp: &QuantizedPrecomp, span_len: usize) -> bool {
    qp.deq_taps.is_none()
        && qp.row_len > PAIR_BLOCK_MIN_ROW
        && paired_kernel_available(qp.scheme(), span_len)
}

/// Padded row stride used by both the f32 and quantized tap repacks (in
/// elements): page-multiple for long rows, cache-line multiple for short
/// ones. Must stay in lockstep with [`crate::GroupPrecomp::of`].
fn padded_tap_stride(row_len: usize) -> usize {
    if row_len >= 1024 {
        row_len.div_ceil(1024) * 1024
    } else {
        row_len.div_ceil(16) * 16
    }
}

impl QuantizedPrecomp {
    /// Quantizes one group's `(K, D·len)` matrix, deriving i16 scales from
    /// the rows themselves. The caller must have validated the taps (finite;
    /// within ±[`tcsl_tensor::quant::F16_MAX`] for f16) — see
    /// [`crate::ShapeletBank::quantize`].
    pub fn of(shapelets: &Tensor, scheme: QuantScheme) -> QuantizedPrecomp {
        match scheme {
            QuantScheme::F16 => Self::build(shapelets, None),
            QuantScheme::I16 => {
                let scales: Vec<f32> = (0..shapelets.rows())
                    .map(|k| i16_scale(shapelets.row(k)))
                    .collect();
                Self::build(shapelets, Some(scales))
            }
        }
    }

    /// i16 quantization with externally supplied per-row scales — the model
    /// loader path, where reusing the persisted scales makes save → load →
    /// re-quantize exactly idempotent. The caller must have validated that
    /// every `round(x / scale)` lands in `[-32767, 32767]`.
    pub fn with_scales(shapelets: &Tensor, scales: Vec<f32>) -> QuantizedPrecomp {
        debug_assert_eq!(scales.len(), shapelets.rows());
        Self::build(shapelets, Some(scales))
    }

    fn build(shapelets: &Tensor, scales: Option<Vec<f32>>) -> QuantizedPrecomp {
        let (k, row_len) = (shapelets.rows(), shapelets.cols());
        let tap_stride = padded_tap_stride(row_len);
        // Quantize each row, then derive norms from the dequantized values
        // (one pass through a dequantized scratch row).
        let mut sq_norms: Vec<f32> = Vec::with_capacity(k);
        let taps = match scales {
            None => {
                let mut packed = vec![0u16; k * tap_stride];
                for r in 0..k {
                    let q = quantize_f16(shapelets.row(r));
                    sq_norms.push(q.iter().map(|&b| f16_to_f32(b)).map(|x| x * x).sum());
                    packed[r * tap_stride..r * tap_stride + row_len].copy_from_slice(&q);
                }
                QuantTaps::F16(packed)
            }
            Some(scales) => {
                let mut packed = vec![0i16; k * tap_stride];
                for r in 0..k {
                    let s = scales[r];
                    let q = quantize_i16(shapelets.row(r), s);
                    sq_norms.push(q.iter().map(|&v| v as f32 * s).map(|x| x * x).sum());
                    packed[r * tap_stride..r * tap_stride + row_len].copy_from_slice(&q);
                }
                QuantTaps::I16 { q: packed, scales }
            }
        };
        let inv_norms = sq_norms.iter().map(|&n| 1.0 / (n + 1e-12).sqrt()).collect();
        let mut qp = QuantizedPrecomp {
            sq_norms,
            inv_norms,
            taps,
            deq_taps: None,
            tap_stride,
            row_len,
        };
        if row_len < QUANT_MIN_LEN {
            let deq = qp.dequantized();
            let mut rows = vec![0.0f32; k * tap_stride];
            for r in 0..k {
                rows[r * tap_stride..r * tap_stride + row_len].copy_from_slice(deq.row(r));
            }
            qp.deq_taps = Some(rows);
        }
        qp
    }

    /// Number of shapelets in the group.
    pub fn k(&self) -> usize {
        self.sq_norms.len()
    }

    /// The scheme the taps are stored in.
    pub fn scheme(&self) -> QuantScheme {
        match self.taps {
            QuantTaps::F16(_) => QuantScheme::F16,
            QuantTaps::I16 { .. } => QuantScheme::I16,
        }
    }

    /// Per-shapelet i16 scales (`None` for f16 taps). Persisted by model
    /// format v3 so loading reconstructs the exact same quantized taps.
    pub fn scales(&self) -> Option<&[f32]> {
        match &self.taps {
            QuantTaps::F16(_) => None,
            QuantTaps::I16 { scales, .. } => Some(scales),
        }
    }

    /// The dequantized `(K, D·len)` matrix — the f32 view the bank exposes
    /// as `group.shapelets` after quantization.
    pub fn dequantized(&self) -> Tensor {
        let (k, w) = (self.k(), self.row_len);
        let mut data = Vec::with_capacity(k * w);
        for r in 0..k {
            let span = r * self.tap_stride..r * self.tap_stride + w;
            match &self.taps {
                QuantTaps::F16(v) => data.extend(dequantize_f16(&v[span])),
                QuantTaps::I16 { q, scales } => data.extend(dequantize_i16(&q[span], scales[r])),
            }
        }
        Tensor::from_vec(data, [k, w])
    }

    /// A new precomputation holding only the selected rows (in the given
    /// order) — carries quantization through bank subsetting without a
    /// re-quantization round trip.
    pub fn subset_rows(&self, rows: &[usize]) -> QuantizedPrecomp {
        let w = self.row_len;
        let stride = self.tap_stride;
        let sq_norms: Vec<f32> = rows.iter().map(|&r| self.sq_norms[r]).collect();
        let inv_norms: Vec<f32> = rows.iter().map(|&r| self.inv_norms[r]).collect();
        let taps = match &self.taps {
            QuantTaps::F16(v) => {
                let mut packed = vec![0u16; rows.len() * stride];
                for (i, &r) in rows.iter().enumerate() {
                    packed[i * stride..i * stride + w]
                        .copy_from_slice(&v[r * stride..r * stride + w]);
                }
                QuantTaps::F16(packed)
            }
            QuantTaps::I16 { q, scales } => {
                let mut packed = vec![0i16; rows.len() * stride];
                for (i, &r) in rows.iter().enumerate() {
                    packed[i * stride..i * stride + w]
                        .copy_from_slice(&q[r * stride..r * stride + w]);
                }
                QuantTaps::I16 {
                    q: packed,
                    scales: rows.iter().map(|&r| scales[r]).collect(),
                }
            }
        };
        let deq_taps = self.deq_taps.as_ref().map(|v| {
            let mut packed = vec![0.0f32; rows.len() * stride];
            for (i, &r) in rows.iter().enumerate() {
                packed[i * stride..i * stride + w].copy_from_slice(&v[r * stride..r * stride + w]);
            }
            packed
        });
        QuantizedPrecomp {
            sq_norms,
            inv_norms,
            taps,
            deq_taps,
            tap_stride: stride,
            row_len: w,
        }
    }
}

/// Pools one quantized group over a series — the mixed-precision sibling of
/// [`crate::fused::pool_measure`], with the same fused/blocked dispatch and
/// identical argmin semantics. Reuses the `shapelet.pool.*` counters (the
/// engine choice is the same decision) and records the kernel choice on the
/// quantized `dot.dispatch.*` counters.
pub fn pool_measure_quant(
    sw: &ScaleWindows,
    measure: Measure,
    qp: &QuantizedPrecomp,
) -> (Vec<f32>, Vec<usize>) {
    let series_bytes = sw.padded.numel() * core::mem::size_of::<f32>();
    if qp.k() > 1 && series_bytes > BLOCKED_SERIES_BYTES {
        tcsl_obs::counters::SHAPELET_POOL_BLOCKED.add(1);
        pool_quant_blocked(sw, measure, qp)
    } else {
        tcsl_obs::counters::SHAPELET_POOL_FUSED.add(1);
        pool_quant_fused(sw, measure, qp)
    }
}

/// Fused streaming engine over half-width taps: shapelet-major in blocks of
/// 4 (mirrors [`crate::fused`]'s `pool_group_fused` loop structure exactly,
/// so pooled values and argmins differ from f32 only by the tap rounding).
fn pool_quant_fused(
    sw: &ScaleWindows,
    measure: Measure,
    qp: &QuantizedPrecomp,
) -> (Vec<f32>, Vec<usize>) {
    let d = sw.padded.rows();
    let width = (d * sw.len) as f32;
    let k = qp.k();
    let mut pooled = vec![f32::NAN; k];
    let mut args = vec![0usize; k];
    let full = k - k % 4;
    let (stride, w_len) = (qp.tap_stride, qp.row_len);
    let update = |kk: usize, w: usize, cross: f32, pooled: &mut [f32], args: &mut [usize]| {
        let s = score(
            measure,
            cross,
            sw,
            w,
            qp.sq_norms[kk],
            qp.inv_norms[kk],
            width,
        );
        if w == 0 || measure.better(s, pooled[kk]) {
            pooled[kk] = s;
            args[kk] = w;
        }
    };
    // Sub-threshold rows pool through the plain f32 kernels on the
    // dequantized copy (see `QuantizedPrecomp::deq_taps`) and count as f32
    // dispatch — the mixed-precision kernels never run for them.
    if let Some(rows) = &qp.deq_taps {
        count_dot_dispatch(sw.len, (k * d * sw.n) as u64);
        let row = |r: usize| &rows[r * stride..r * stride + w_len];
        for kb in (0..full).step_by(4) {
            let taps = [row(kb), row(kb + 1), row(kb + 2), row(kb + 3)];
            for w in 0..sw.n {
                let cross = window_dot4(&sw.padded, taps, w * sw.stride, sw.len);
                for (j, &c) in cross.iter().enumerate() {
                    update(kb + j, w, c, &mut pooled, &mut args);
                }
            }
        }
        for kk in full..k {
            let taps = row(kk);
            for w in 0..sw.n {
                let cross = window_dot(&sw.padded, taps, w * sw.stride, sw.len);
                update(kk, w, cross, &mut pooled, &mut args);
            }
        }
        return (pooled, args);
    }
    count_quant_dot_dispatch(qp.scheme(), sw.len, (k * d * sw.n) as u64);
    // Wide rows stream in 2-row blocks (see PAIR_BLOCK_MIN_ROW); the pair
    // kernels keep the per-row accumulation order of the 4-row kernels, so
    // the block width changes cache behaviour, not values.
    let pair = pair_block(qp, sw.len);
    let full2 = k - k % 2;
    match &qp.taps {
        QuantTaps::F16(v) => {
            let row = |r: usize| &v[r * stride..r * stride + w_len];
            if pair {
                for kb in (0..full2).step_by(2) {
                    let taps = [row(kb), row(kb + 1)];
                    // Window quads share tap loads and conversions; trailing
                    // windows fall back to the single-window pair kernel
                    // (bit-identical per-dot values).
                    let mut w = 0usize;
                    while w + 4 <= sw.n {
                        let starts = [w, w + 1, w + 2, w + 3].map(|x| x * sw.stride);
                        let cross = window_dot2x4_f16(&sw.padded, taps, starts, sw.len);
                        for (wi, cw) in cross.iter().enumerate() {
                            for (j, &c) in cw.iter().enumerate() {
                                update(kb + j, w + wi, c, &mut pooled, &mut args);
                            }
                        }
                        w += 4;
                    }
                    while w < sw.n {
                        let cross = window_dot2_f16(&sw.padded, taps, w * sw.stride, sw.len);
                        for (j, &c) in cross.iter().enumerate() {
                            update(kb + j, w, c, &mut pooled, &mut args);
                        }
                        w += 1;
                    }
                }
            } else {
                for kb in (0..full).step_by(4) {
                    let taps = [row(kb), row(kb + 1), row(kb + 2), row(kb + 3)];
                    for w in 0..sw.n {
                        let cross = window_dot4_f16(&sw.padded, taps, w * sw.stride, sw.len);
                        for (j, &c) in cross.iter().enumerate() {
                            update(kb + j, w, c, &mut pooled, &mut args);
                        }
                    }
                }
            }
            for kk in if pair { full2 } else { full }..k {
                let taps = row(kk);
                for w in 0..sw.n {
                    let cross = window_dot_f16(&sw.padded, taps, w * sw.stride, sw.len);
                    update(kk, w, cross, &mut pooled, &mut args);
                }
            }
        }
        QuantTaps::I16 { q, scales } => {
            let row = |r: usize| &q[r * stride..r * stride + w_len];
            if pair {
                for kb in (0..full2).step_by(2) {
                    let taps = [row(kb), row(kb + 1)];
                    let mut w = 0usize;
                    while w + 4 <= sw.n {
                        let starts = [w, w + 1, w + 2, w + 3].map(|x| x * sw.stride);
                        let cross = window_dot2x4_i16(&sw.padded, taps, starts, sw.len);
                        for (wi, cw) in cross.iter().enumerate() {
                            for (j, &c) in cw.iter().enumerate() {
                                update(kb + j, w + wi, c * scales[kb + j], &mut pooled, &mut args);
                            }
                        }
                        w += 4;
                    }
                    while w < sw.n {
                        let cross = window_dot2_i16(&sw.padded, taps, w * sw.stride, sw.len);
                        for (j, &c) in cross.iter().enumerate() {
                            update(kb + j, w, c * scales[kb + j], &mut pooled, &mut args);
                        }
                        w += 1;
                    }
                }
            } else {
                for kb in (0..full).step_by(4) {
                    let taps = [row(kb), row(kb + 1), row(kb + 2), row(kb + 3)];
                    for w in 0..sw.n {
                        let cross = window_dot4_i16(&sw.padded, taps, w * sw.stride, sw.len);
                        for (j, &c) in cross.iter().enumerate() {
                            update(kb + j, w, c * scales[kb + j], &mut pooled, &mut args);
                        }
                    }
                }
            }
            for kk in if pair { full2 } else { full }..k {
                let taps = row(kk);
                for w in 0..sw.n {
                    let cross = window_dot_i16(&sw.padded, taps, w * sw.stride, sw.len);
                    update(kk, w, cross * scales[kk], &mut pooled, &mut args);
                }
            }
        }
    }
    (pooled, args)
}

/// Blocked fallback over half-width taps: windows are copied into the same
/// bounded f32 scratch tile as the f32 blocked engine, then scored against
/// the quantized rows (the tap stream — the half-width one — is still what
/// each tile re-reads `K` times).
fn pool_quant_blocked(
    sw: &ScaleWindows,
    measure: Measure,
    qp: &QuantizedPrecomp,
) -> (Vec<f32>, Vec<usize>) {
    let d = sw.padded.rows();
    let len = sw.len;
    let row_w = d * len;
    let width = row_w as f32;
    let k = qp.k();
    // Sub-threshold rows score from the dequantized f32 copy (f32
    // dispatch); the half-width kernels only run above QUANT_MIN_LEN.
    if qp.deq_taps.is_some() {
        count_dot_dispatch(row_w, (k * sw.n) as u64);
    } else {
        count_quant_dot_dispatch(qp.scheme(), row_w, (k * sw.n) as u64);
    }
    let mut pooled = vec![f32::NAN; k];
    let mut args = vec![0usize; k];
    let mut tile = vec![0.0f32; TILE_WINDOWS.min(sw.n) * row_w];
    let (stride, w_len) = (qp.tap_stride, qp.row_len);
    let mut tile_start = 0usize;
    while tile_start < sw.n {
        let tile_n = TILE_WINDOWS.min(sw.n - tile_start);
        for (r, buf) in tile.chunks_mut(row_w).take(tile_n).enumerate() {
            let start = (tile_start + r) * sw.stride;
            for v in 0..d {
                buf[v * len..(v + 1) * len].copy_from_slice(&sw.padded.row(v)[start..start + len]);
            }
        }
        for r in 0..tile_n {
            let w = tile_start + r;
            let row = &tile[r * row_w..(r + 1) * row_w];
            for j in 0..k {
                let cross = if let Some(rows) = &qp.deq_taps {
                    dot(row, &rows[j * stride..j * stride + w_len])
                } else {
                    match &qp.taps {
                        QuantTaps::F16(v) => dot_f16(row, &v[j * stride..j * stride + w_len]),
                        QuantTaps::I16 { q, scales } => {
                            dot_i16(row, &q[j * stride..j * stride + w_len]) * scales[j]
                        }
                    }
                };
                let s = score(
                    measure,
                    cross,
                    sw,
                    w,
                    qp.sq_norms[j],
                    qp.inv_norms[j],
                    width,
                );
                if w == 0 || measure.better(s, pooled[j]) {
                    pooled[j] = s;
                    args[j] = w;
                }
            }
        }
        tile_start += tile_n;
    }
    (pooled, args)
}

/// Per-window scores of one shapelet of a quantized group — the quantized
/// sibling of [`crate::fused::shapelet_scores`], mirroring
/// [`pool_quant_fused`]'s shapelet blocking so localization scores are
/// bit-identical to the pooled feature values.
pub fn shapelet_scores_quant(
    sw: &ScaleWindows,
    measure: Measure,
    qp: &QuantizedPrecomp,
    k: usize,
) -> Vec<f32> {
    assert!(
        k < qp.k(),
        "shapelet {k} out of range for group of {}",
        qp.k()
    );
    let d = sw.padded.rows();
    let width = (d * sw.len) as f32;
    let (s_sq, s_inv) = (qp.sq_norms[k], qp.inv_norms[k]);
    let full = qp.k() - qp.k() % 4;
    let (stride, w_len) = (qp.tap_stride, qp.row_len);
    let mut out = Vec::with_capacity(sw.n);
    let blocked = k < full;
    // Sub-threshold rows localize through the plain f32 kernels on the
    // dequantized copy — the exact path pooling took, so score == feature
    // value still holds bit-for-bit.
    if let Some(rows) = &qp.deq_taps {
        count_dot_dispatch(sw.len, ((if blocked { 4 } else { 1 }) * d * sw.n) as u64);
        let row = |r: usize| &rows[r * stride..r * stride + w_len];
        if blocked {
            let kb = k / 4 * 4;
            let j = k - kb;
            let taps = [row(kb), row(kb + 1), row(kb + 2), row(kb + 3)];
            for w in 0..sw.n {
                let cross = window_dot4(&sw.padded, taps, w * sw.stride, sw.len)[j];
                out.push(score(measure, cross, sw, w, s_sq, s_inv, width));
            }
        } else {
            let taps = row(k);
            for w in 0..sw.n {
                let cross = window_dot(&sw.padded, taps, w * sw.stride, sw.len);
                out.push(score(measure, cross, sw, w, s_sq, s_inv, width));
            }
        }
        return out;
    }
    // Mirror pool_quant_fused's block-width decision exactly: the same
    // kernel must compute this shapelet's cross terms here as did during
    // pooling, or `score == pooled feature` would only hold to round-off.
    let pair = pair_block(qp, sw.len);
    let bw = if pair { 2 } else { 4 };
    let full = qp.k() - qp.k() % bw;
    let blocked = k < full;
    let kb = k / bw * bw;
    let j = k - kb;
    count_quant_dot_dispatch(
        qp.scheme(),
        sw.len,
        ((if blocked { bw } else { 1 }) * d * sw.n) as u64,
    );
    match &qp.taps {
        QuantTaps::F16(v) => {
            let row = |r: usize| &v[r * stride..r * stride + w_len];
            if blocked && pair {
                let taps = [row(kb), row(kb + 1)];
                for w in 0..sw.n {
                    let cross = window_dot2_f16(&sw.padded, taps, w * sw.stride, sw.len)[j];
                    out.push(score(measure, cross, sw, w, s_sq, s_inv, width));
                }
            } else if blocked {
                let taps = [row(kb), row(kb + 1), row(kb + 2), row(kb + 3)];
                for w in 0..sw.n {
                    let cross = window_dot4_f16(&sw.padded, taps, w * sw.stride, sw.len)[j];
                    out.push(score(measure, cross, sw, w, s_sq, s_inv, width));
                }
            } else {
                let taps = row(k);
                for w in 0..sw.n {
                    let cross = window_dot_f16(&sw.padded, taps, w * sw.stride, sw.len);
                    out.push(score(measure, cross, sw, w, s_sq, s_inv, width));
                }
            }
        }
        QuantTaps::I16 { q, scales } => {
            let row = |r: usize| &q[r * stride..r * stride + w_len];
            let sc = scales[k];
            if blocked && pair {
                let taps = [row(kb), row(kb + 1)];
                for w in 0..sw.n {
                    let cross = window_dot2_i16(&sw.padded, taps, w * sw.stride, sw.len)[j] * sc;
                    out.push(score(measure, cross, sw, w, s_sq, s_inv, width));
                }
            } else if blocked {
                let taps = [row(kb), row(kb + 1), row(kb + 2), row(kb + 3)];
                for w in 0..sw.n {
                    let cross = window_dot4_i16(&sw.padded, taps, w * sw.stride, sw.len)[j] * sc;
                    out.push(score(measure, cross, sw, w, s_sq, s_inv, width));
                }
            } else {
                let taps = row(k);
                for w in 0..sw.n {
                    let cross = window_dot_i16(&sw.padded, taps, w * sw.stride, sw.len) * sc;
                    out.push(score(measure, cross, sw, w, s_sq, s_inv, width));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShapeletConfig;
    use crate::fused::pool_group_fused;
    use crate::{GroupPrecomp, ShapeletBank};
    use tcsl_tensor::rng::seeded;

    fn bank(d: usize, len: usize, k: usize) -> ShapeletBank {
        let cfg = ShapeletConfig {
            lengths: vec![len],
            k_per_group: k,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        };
        let mut b = ShapeletBank::new(&cfg, d);
        b.randomize(&mut seeded(31));
        b
    }

    #[test]
    fn precision_name_parse_round_trip() {
        for p in [BankPrecision::Full, BankPrecision::F16, BankPrecision::I16] {
            assert_eq!(BankPrecision::parse(p.name()), Some(p));
        }
        assert_eq!(BankPrecision::parse("f64"), None);
        assert_eq!(BankPrecision::Full.scheme(), None);
        assert_eq!(BankPrecision::F16.scheme(), Some(QuantScheme::F16));
        assert_eq!(BankPrecision::I16.scheme(), Some(QuantScheme::I16));
        assert_eq!(BankPrecision::default(), BankPrecision::Full);
    }

    #[test]
    fn norms_match_group_precomp_of_dequantized_view() {
        let b = bank(2, 9, 5);
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            for g in b.groups() {
                let qp = QuantizedPrecomp::of(&g.shapelets, scheme);
                let deq = qp.dequantized();
                let pre = GroupPrecomp::of(&deq);
                assert_eq!(qp.sq_norms, pre.sq_norms, "{scheme:?}");
                assert_eq!(qp.inv_norms, pre.inv_norms, "{scheme:?}");
            }
        }
    }

    #[test]
    fn quant_pooling_matches_f32_pooling_on_dequantized_taps() {
        // The quantized engines vs the f32 engines run on the *dequantized*
        // bank: same values stream through (just narrower storage), so the
        // scores agree to kernel round-off and argmins agree exactly.
        let mut rng = seeded(32);
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            for &(d, t, len, k) in &[(1usize, 60usize, 7usize, 5usize), (2, 120, 16, 4)] {
                let b = bank(d, len, k);
                let series = Tensor::randn([d, t], &mut rng);
                for g in b.groups() {
                    let qp = QuantizedPrecomp::of(&g.shapelets, scheme);
                    let pre = GroupPrecomp::of(&qp.dequantized());
                    let sw = ScaleWindows::new(&series, g.len, g.stride);
                    let (want, want_args) = pool_group_fused(&sw, g.measure, &pre);
                    let (got, got_args) = pool_quant_fused(&sw, g.measure, &qp);
                    let (got_b, got_args_b) = pool_quant_blocked(&sw, g.measure, &qp);
                    for j in 0..k {
                        assert!(
                            (got[j] - want[j]).abs() < 1e-4 * (1.0 + want[j].abs()),
                            "{scheme:?} {:?} k={j}: quant {} vs f32-on-deq {}",
                            g.measure,
                            got[j],
                            want[j]
                        );
                        assert_eq!(
                            got_args[j], want_args[j],
                            "{scheme:?} {:?} k={j}",
                            g.measure
                        );
                        assert!(
                            (got_b[j] - want[j]).abs() < 1e-4 * (1.0 + want[j].abs()),
                            "{scheme:?} blocked {:?} k={j}",
                            g.measure
                        );
                        assert_eq!(got_args_b[j], want_args[j]);
                    }
                }
            }
        }
    }

    #[test]
    fn short_scale_f16_pooling_is_bit_identical_to_f32_on_deq() {
        // Below the SIMD threshold both sides run mirrored scalar kernels
        // on the same values (f16→f32 is exact), so f16 pooling is
        // bit-identical to f32 pooling on the dequantized taps. (i16 is
        // not: its scale is applied once per dot instead of per element,
        // which rounds differently — covered by the tolerance test above.)
        let b = bank(1, 5, 3);
        let series = Tensor::randn([1, 40], &mut seeded(33));
        for g in b.groups() {
            let qp = QuantizedPrecomp::of(&g.shapelets, QuantScheme::F16);
            let pre = GroupPrecomp::of(&qp.dequantized());
            let sw = ScaleWindows::new(&series, g.len, g.stride);
            let (want, want_args) = pool_group_fused(&sw, g.measure, &pre);
            let (got, got_args) = pool_quant_fused(&sw, g.measure, &qp);
            assert_eq!(got, want, "{:?}", g.measure);
            assert_eq!(got_args, want_args);
        }
    }

    #[test]
    fn wide_rows_pool_and_localize_consistently() {
        // Rows past PAIR_BLOCK_MIN_ROW take the 2-row / window-quad path on
        // machines with the fused pair kernels (and the 4-row path
        // elsewhere); in both cases localization must reproduce the pooled
        // value bit-for-bit and the scores must stay inside the same error
        // envelope as the f32 engines on the dequantized bank. k = 3 also
        // exercises the odd-row remainder of the pair loop.
        let len = PAIR_BLOCK_MIN_ROW + 29;
        let b = bank(1, len, 3);
        let series = Tensor::randn([1, len + 97], &mut seeded(35));
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            for g in b.groups() {
                let qp = QuantizedPrecomp::of(&g.shapelets, scheme);
                let pre = GroupPrecomp::of(&qp.dequantized());
                let sw = ScaleWindows::new(&series, g.len, g.stride);
                let (want, _) = pool_group_fused(&sw, g.measure, &pre);
                let (pooled, args) = pool_quant_fused(&sw, g.measure, &qp);
                for k in 0..g.k() {
                    assert!(
                        (pooled[k] - want[k]).abs() < 1e-3 * (1.0 + want[k].abs()),
                        "{scheme:?} {:?} k={k}: quant {} vs f32-on-deq {}",
                        g.measure,
                        pooled[k],
                        want[k]
                    );
                    let col = shapelet_scores_quant(&sw, g.measure, &qp, k);
                    assert_eq!(col.len(), sw.n);
                    assert_eq!(
                        col[args[k]].to_bits(),
                        pooled[k].to_bits(),
                        "{scheme:?} {:?} k={k}",
                        g.measure
                    );
                }
            }
        }
    }

    #[test]
    fn scores_column_matches_pooled_value() {
        let b = bank(2, 6, 5);
        let series = Tensor::randn([2, 50], &mut seeded(34));
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            for g in b.groups() {
                let qp = QuantizedPrecomp::of(&g.shapelets, scheme);
                let sw = ScaleWindows::new(&series, g.len, g.stride);
                let (pooled, args) = pool_quant_fused(&sw, g.measure, &qp);
                for k in 0..g.k() {
                    let col = shapelet_scores_quant(&sw, g.measure, &qp, k);
                    assert_eq!(col.len(), sw.n);
                    assert_eq!(col[args[k]], pooled[k], "{scheme:?} {:?} k={k}", g.measure);
                }
            }
        }
    }

    #[test]
    fn subset_rows_preserves_taps_and_scales() {
        let b = bank(1, 8, 5);
        let g = &b.groups()[0];
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            let qp = QuantizedPrecomp::of(&g.shapelets, scheme);
            let sub = qp.subset_rows(&[4, 1]);
            assert_eq!(sub.k(), 2);
            assert_eq!(sub.sq_norms, vec![qp.sq_norms[4], qp.sq_norms[1]]);
            let deq = qp.dequantized();
            let sub_deq = sub.dequantized();
            assert_eq!(sub_deq.row(0), deq.row(4));
            assert_eq!(sub_deq.row(1), deq.row(1));
            if let (Some(s), Some(sub_s)) = (qp.scales(), sub.scales()) {
                assert_eq!(sub_s, &[s[4], s[1]]);
            }
        }
    }

    #[test]
    fn with_scales_reconstructs_identical_taps() {
        // Quantize, dequantize, re-quantize with the persisted scales: the
        // round trip must be exact (|q·s / s − q| ≪ ½ for |q| ≤ 32767).
        let b = bank(2, 11, 4);
        for g in b.groups() {
            let qp = QuantizedPrecomp::of(&g.shapelets, QuantScheme::I16);
            let deq = qp.dequantized();
            #[allow(clippy::disallowed_methods)] // i16 precomp always has scales
            let scales = qp.scales().expect("i16 scales").to_vec();
            let again = QuantizedPrecomp::with_scales(&deq, scales);
            assert_eq!(again.dequantized(), deq);
            assert_eq!(again.sq_norms, qp.sq_norms);
        }
        // Same for f16, where dequantize∘quantize is exactly idempotent.
        for g in b.groups() {
            let qp = QuantizedPrecomp::of(&g.shapelets, QuantScheme::F16);
            let deq = qp.dequantized();
            let again = QuantizedPrecomp::of(&deq, QuantScheme::F16);
            assert_eq!(again.dequantized(), deq);
        }
    }
}

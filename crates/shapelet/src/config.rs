//! Shapelet Transformer configuration, including the adaptive default the
//! demo's "Step 1" recommends (§4.2 of the CSL paper: lengths set as
//! fractions of the series length, measures = {Euclidean, cosine,
//! cross-correlation}).

use crate::measure::Measure;

/// Configuration of a [`crate::ShapeletBank`].
#[derive(Clone, Debug)]
pub struct ShapeletConfig {
    /// Shapelet lengths (scales), in time steps, ascending.
    pub lengths: Vec<usize>,
    /// Number of shapelets per (scale, measure) group.
    pub k_per_group: usize,
    /// Measures to learn shapelets under.
    pub measures: Vec<Measure>,
    /// Window stride used when sliding shapelets over series (1 = every
    /// position; larger values speed up very long series).
    pub stride: usize,
}

impl ShapeletConfig {
    /// The fractions of the series length the adaptive configuration uses.
    pub const ADAPTIVE_FRACTIONS: [f32; 4] = [0.1, 0.2, 0.4, 0.8];

    /// The recommended configuration for series of length `t`: lengths
    /// `⌈p·t⌉` for `p ∈ {0.1, 0.2, 0.4, 0.8}` (clamped to `[3, t]`,
    /// deduplicated), `K = 10` shapelets per (scale, measure), all three
    /// measures, stride 1.
    pub fn adaptive(t: usize) -> Self {
        let mut lengths: Vec<usize> = Self::ADAPTIVE_FRACTIONS
            .iter()
            .map(|&p| (((t as f32) * p).ceil() as usize).clamp(3.min(t), t))
            .collect();
        lengths.sort_unstable();
        lengths.dedup();
        ShapeletConfig {
            lengths,
            k_per_group: 10,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        }
    }

    /// Adaptive configuration for long series: fixed short scales and a
    /// stride that caps the window count near `max_windows` (E1d).
    pub fn adaptive_long(t: usize, max_windows: usize) -> Self {
        let lengths: Vec<usize> = [32usize, 64, 128].into_iter().filter(|&l| l <= t).collect();
        let lengths = if lengths.is_empty() {
            vec![t.max(3).min(t)]
        } else {
            lengths
        };
        let stride = (t / max_windows.max(1)).max(1);
        ShapeletConfig {
            lengths,
            k_per_group: 10,
            measures: Measure::ALL.to_vec(),
            stride,
        }
    }

    /// Total number of (scale, measure) groups.
    pub fn n_groups(&self) -> usize {
        self.lengths.len() * self.measures.len()
    }

    /// Total representation dimensionality `D_repr`.
    pub fn repr_dim(&self) -> usize {
        self.n_groups() * self.k_per_group
    }

    /// Validates invariants; call before building a bank.
    pub fn validate(&self) {
        assert!(
            !self.lengths.is_empty(),
            "at least one shapelet length required"
        );
        assert!(!self.measures.is_empty(), "at least one measure required");
        assert!(self.k_per_group >= 1, "k_per_group must be positive");
        assert!(self.stride >= 1, "stride must be positive");
        assert!(
            self.lengths.windows(2).all(|w| w[0] < w[1]),
            "lengths must be strictly ascending"
        );
        assert!(
            self.lengths.iter().all(|&l| l >= 2),
            "shapelet lengths must be >= 2"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_uses_fraction_lengths() {
        let cfg = ShapeletConfig::adaptive(100);
        assert_eq!(cfg.lengths, vec![10, 20, 40, 80]);
        assert_eq!(cfg.k_per_group, 10);
        assert_eq!(cfg.measures.len(), 3);
        assert_eq!(cfg.repr_dim(), 4 * 3 * 10);
        cfg.validate();
    }

    #[test]
    fn adaptive_dedupes_tiny_series() {
        let cfg = ShapeletConfig::adaptive(10);
        // ceil(1), ceil(2), ceil(4), ceil(8) → clamped and deduped.
        assert!(cfg.lengths.windows(2).all(|w| w[0] < w[1]));
        assert!(cfg.lengths.iter().all(|&l| l <= 10));
        cfg.validate();
    }

    #[test]
    fn adaptive_long_caps_windows() {
        let cfg = ShapeletConfig::adaptive_long(4096, 256);
        assert_eq!(cfg.lengths, vec![32, 64, 128]);
        assert_eq!(cfg.stride, 16);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_lengths_rejected() {
        ShapeletConfig {
            lengths: vec![20, 10],
            k_per_group: 5,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "length")]
    fn empty_lengths_rejected() {
        ShapeletConfig {
            lengths: vec![],
            k_per_group: 5,
            measures: Measure::ALL.to_vec(),
            stride: 1,
        }
        .validate();
    }
}

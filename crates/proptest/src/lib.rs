//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this API-compatible subset instead. It covers what the workspace's
//! property tests use: range and tuple strategies, `prop_map` /
//! `prop_flat_map`, `collection::vec`, the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` attribute, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case panics with the seed-derived case index in the
//! message, which is enough to reproduce (cases are generated
//! deterministically from the test function's name).

use rand::Rng;

/// Per-test configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies (deterministic per test + case index).
pub type TestRng = rand::rngs::StdRng;

/// Builds the deterministic RNG for one test case. Used by the
/// [`proptest!`] macro; not part of the upstream API.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    <TestRng as rand::SeedableRng>::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A generator of random values — upstream's `Strategy`, minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, i64, i32, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec`]: an exact length or a length range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }
    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }
    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `elem` values with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Upstream rejects and retries; this subset simply skips the case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// becomes a regular `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    #[allow(unused_mut)]
                    let mut proptest_case = move || $body;
                    proptest_case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f32>)> {
        (1usize..5).prop_flat_map(|n| {
            (1usize..=n, collection::vec(-1.0f32..1.0, n)).prop_map(|(k, v)| (k, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 2usize..9, x in -3.0f32..3.0) {
            prop_assert!((2..9).contains(&a));
            prop_assert!((-3.0..3.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in collection::vec(0.0f32..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_dependencies_hold((k, v) in pair()) {
            prop_assert!(k <= v.len());
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<usize> = (0..8)
            .map(|c| Strategy::generate(&(0usize..1000), &mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<usize> = (0..8)
            .map(|c| Strategy::generate(&(0usize..1000), &mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases should vary");
    }
}

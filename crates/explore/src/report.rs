//! A self-contained HTML report bundling the exploration panels — the
//! closest headless artefact to the demo's GUI screen (Fig. 3): series,
//! shapelets, matches, the sorted feature table and the t-SNE view in one
//! document.

use crate::session::ExploreSession;
use crate::tsne::TsneConfig;
use tcsl_error::TcslResult;

/// What to include in the report.
#[derive(Clone, Debug)]
pub struct ReportConfig {
    /// Series indices to display (panel a).
    pub series: Vec<usize>,
    /// Feature columns whose shapelets to display (panel c) and match
    /// against the first series (panel b).
    pub shapelets: Vec<usize>,
    /// Columns of the tabular view (panel d); empty = first 6.
    pub table_columns: Vec<usize>,
    /// t-SNE settings for panel e.
    pub tsne: TsneConfig,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            series: vec![0, 1],
            shapelets: vec![0],
            table_columns: Vec::new(),
            tsne: TsneConfig {
                iterations: 250,
                ..Default::default()
            },
        }
    }
}

/// Renders the full exploration report as a standalone HTML string.
/// Out-of-range panel indices surface as typed errors from the session.
pub fn html_report(session: &ExploreSession, cfg: &ReportConfig) -> TcslResult<String> {
    let mut body = String::new();
    let ds = session.dataset();
    body.push_str(&format!(
        "<h1>TimeCSL exploration — {}</h1>\n<p>{} series · {} variables · {} shapelet features</p>\n",
        ds.name,
        ds.len(),
        ds.n_vars(),
        session.features().cols()
    ));

    body.push_str("<h2>(a) Time series</h2>\n<div class=\"row\">\n");
    for &i in &cfg.series {
        body.push_str(&session.render_series(i)?);
    }
    body.push_str("</div>\n");

    body.push_str("<h2>(c) Learned shapelets</h2>\n<div class=\"row\">\n");
    for &col in &cfg.shapelets {
        body.push_str(&session.render_shapelet(col)?);
    }
    body.push_str("</div>\n");

    body.push_str("<h2>(b) Best matches</h2>\n<div class=\"row\">\n");
    if let Some(&first_series) = cfg.series.first() {
        for &col in &cfg.shapelets {
            body.push_str(&session.render_match(first_series, col)?);
        }
    }
    body.push_str("</div>\n");

    body.push_str("<h2>(d) Shapelet-based features (sorted by first column)</h2>\n");
    let cols: Vec<usize> = if cfg.table_columns.is_empty() {
        (0..session.features().cols().min(6)).collect()
    } else {
        cfg.table_columns.clone()
    };
    let table = session.tabular(Some(&cols))?;
    let order = table.sort_by(0, true);
    body.push_str(&format!("<pre>{}</pre>\n", table.render(Some(&order))));

    body.push_str("<h2>(e) t-SNE of the representation</h2>\n");
    body.push_str(&session.render_tsne(None, &cfg.tsne)?);

    Ok(format!(
        concat!(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">",
            "<title>TimeCSL exploration</title>",
            "<style>body{{font-family:sans-serif;margin:24px}}",
            ".row{{display:flex;flex-wrap:wrap;gap:12px}}",
            "pre{{background:#f6f6f6;padding:8px;overflow-x:auto}}</style>",
            "</head><body>\n{}\n</body></html>\n"
        ),
        body
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_core::{CslConfig, TimeCsl};
    use tcsl_data::archive;
    use tcsl_shapelet::{Measure, ShapeletConfig};

    fn session() -> ExploreSession {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 71);
        let scfg = ShapeletConfig {
            lengths: vec![8, 16],
            k_per_group: 2,
            measures: vec![Measure::Euclidean],
            stride: 1,
        };
        let ccfg = CslConfig {
            epochs: 1,
            batch_size: 8,
            grains: vec![1.0],
            seed: 1,
            ..Default::default()
        };
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        ExploreSession::new(model, test).unwrap()
    }

    #[test]
    fn report_contains_all_panels() {
        let s = session();
        let html = html_report(&s, &ReportConfig::default()).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("(a) Time series"));
        assert!(html.contains("(b) Best matches"));
        assert!(html.contains("(c) Learned shapelets"));
        assert!(html.contains("(d) Shapelet-based features"));
        assert!(html.contains("(e) t-SNE"));
        // Three inline SVGs minimum (2 series + 1 shapelet + 1 match + tsne).
        assert!(html.matches("<svg").count() >= 5);
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn custom_columns_respected() {
        let s = session();
        let cfg = ReportConfig {
            shapelets: vec![0, 3],
            table_columns: vec![1, 2],
            ..Default::default()
        };
        let html = html_report(&s, &cfg).unwrap();
        // Two shapelet panels and two match panels.
        assert!(html.matches("shapelet 0").count() >= 1);
        assert!(html.matches("shapelet 3").count() >= 1);
    }

    #[test]
    fn out_of_range_panel_is_a_typed_error() {
        let s = session();
        let cfg = ReportConfig {
            series: vec![s.dataset().len() + 5],
            ..Default::default()
        };
        let err = html_report(&s, &cfg).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
    }
}

//! Shapelet importance ranking — which shapelets are worth exploring?
//!
//! The demo asks users to "select a set of interested shapelets"; these
//! scores suggest where to look. Two rankings are provided:
//!
//! * [`anova_f_scores`] (supervised) — the one-way ANOVA F statistic of
//!   each feature against the class labels: high F = the shapelet's best-
//!   match (dis)similarity separates the classes.
//! * [`variance_scores`] (unsupervised) — feature variance after
//!   standardizing direction; high variance = the shapelet discriminates
//!   *something* in the data.

use tcsl_tensor::Tensor;

/// One-way ANOVA F statistic per feature column of `features (N×F)`
/// against integer `labels`. Returns 0 for degenerate columns.
pub fn anova_f_scores(features: &Tensor, labels: &[usize]) -> Vec<f64> {
    assert_eq!(features.rows(), labels.len(), "one label per row required");
    let n = features.rows();
    assert!(n >= 2, "need at least two samples");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    assert!(k >= 2, "need at least two classes");
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    (0..features.cols())
        .map(|c| {
            let col: Vec<f64> = (0..n).map(|i| features.at2(i, c) as f64).collect();
            let grand = col.iter().sum::<f64>() / n as f64;
            let mut class_means = vec![0.0f64; k];
            for (i, &l) in labels.iter().enumerate() {
                class_means[l] += col[i];
            }
            for (m, &cnt) in class_means.iter_mut().zip(&counts) {
                if cnt > 0 {
                    *m /= cnt as f64;
                }
            }
            // Between-group and within-group sums of squares.
            let ssb: f64 = class_means
                .iter()
                .zip(&counts)
                .map(|(&m, &cnt)| cnt as f64 * (m - grand) * (m - grand))
                .sum();
            let ssw: f64 = col
                .iter()
                .zip(labels)
                .map(|(&x, &l)| (x - class_means[l]) * (x - class_means[l]))
                .sum();
            let df_between = (k - 1) as f64;
            let df_within = (n - k) as f64;
            if ssw < 1e-12 || df_within <= 0.0 {
                if ssb > 1e-12 {
                    f64::MAX / 1e6 // perfectly separating column
                } else {
                    0.0
                }
            } else {
                (ssb / df_between) / (ssw / df_within)
            }
        })
        .collect()
}

/// Per-column variance of the feature matrix (unsupervised importance).
pub fn variance_scores(features: &Tensor) -> Vec<f64> {
    let n = features.rows().max(1) as f64;
    (0..features.cols())
        .map(|c| {
            let mean: f64 = (0..features.rows())
                .map(|i| features.at2(i, c) as f64)
                .sum::<f64>()
                / n;
            (0..features.rows())
                .map(|i| {
                    let d = features.at2(i, c) as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / n
        })
        .collect()
}

/// Indices of the `k` highest-scoring columns, best first.
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    #[allow(clippy::disallowed_methods)] // scores come from a validated transform
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_score_finds_the_separating_column() {
        // Column 0: class-dependent; column 1: pure noise-like alternation.
        let feats = Tensor::from_vec(
            vec![
                0.0, 5.0, //
                0.1, -5.0, //
                0.2, 5.0, //
                5.0, -5.0, //
                5.1, 5.0, //
                5.2, -5.0,
            ],
            [6, 2],
        );
        let labels = [0usize, 0, 0, 1, 1, 1];
        let f = anova_f_scores(&feats, &labels);
        assert!(f[0] > f[1] * 10.0, "F scores {f:?}");
        assert_eq!(top_k(&f, 1), vec![0]);
    }

    #[test]
    fn constant_column_scores_zero() {
        let feats = Tensor::from_vec(vec![1.0, 2.0, 1.0, 2.0], [4, 1]);
        let same = Tensor::concat_cols(&[&feats, &Tensor::full([4, 1], 3.0)]);
        let f = anova_f_scores(&same, &[0, 1, 0, 1]);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn perfectly_separating_column_is_top() {
        let feats = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], [4, 1]);
        let f = anova_f_scores(&feats, &[0, 0, 1, 1]);
        assert!(f[0] > 1e6);
    }

    #[test]
    fn variance_ranks_spread_columns_first() {
        let feats = Tensor::from_vec(
            vec![0.0, 100.0, 1.0, -100.0, 0.5, 100.0, 0.7, -100.0],
            [4, 2],
        );
        let v = variance_scores(&feats);
        assert!(v[1] > v[0]);
        assert_eq!(top_k(&v, 2), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn single_class_rejected() {
        anova_f_scores(&Tensor::zeros([3, 1]), &[0, 0, 0]);
    }
}

//! The tabular feature view (Fig. 3d): shapelet-based features of a dataset
//! with per-column sorting — "sort the time series according to each of the
//! shapelets".

use tcsl_tensor::Tensor;

/// A feature table: named columns over series rows.
#[derive(Clone, Debug)]
pub struct FeatureTable {
    column_names: Vec<String>,
    features: Tensor,
}

impl FeatureTable {
    /// Builds a table from a feature matrix and its column names.
    pub fn new(column_names: Vec<String>, features: Tensor) -> Self {
        assert_eq!(
            column_names.len(),
            features.cols(),
            "one name per feature column required"
        );
        FeatureTable {
            column_names,
            features,
        }
    }

    /// Column names.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Number of series rows.
    pub fn n_rows(&self) -> usize {
        self.features.rows()
    }

    /// Restricts to a subset of columns.
    pub fn select_columns(&self, columns: &[usize]) -> FeatureTable {
        assert!(!columns.is_empty(), "select at least one column");
        let mut out = Tensor::zeros([self.features.rows(), columns.len()]);
        for i in 0..self.features.rows() {
            for (k, &c) in columns.iter().enumerate() {
                out.set(&[i, k], self.features.at2(i, c));
            }
        }
        FeatureTable {
            column_names: columns
                .iter()
                .map(|&c| self.column_names[c].clone())
                .collect(),
            features: out,
        }
    }

    /// Row order sorted by one column (ascending or descending) — the
    /// demo's per-shapelet sort. Returns series indices.
    pub fn sort_by(&self, column: usize, ascending: bool) -> Vec<usize> {
        assert!(
            column < self.features.cols(),
            "column {column} out of range"
        );
        let mut order: Vec<usize> = (0..self.features.rows()).collect();
        #[allow(clippy::disallowed_methods)] // features come from a validated transform
        order.sort_by(|&a, &b| {
            let cmp = self
                .features
                .at2(a, column)
                .partial_cmp(&self.features.at2(b, column))
                .expect("finite features");
            if ascending {
                cmp
            } else {
                cmp.reverse()
            }
        });
        order
    }

    /// Value at `(row, column)`.
    pub fn value(&self, row: usize, column: usize) -> f32 {
        self.features.at2(row, column)
    }

    /// The raw feature matrix.
    pub fn matrix(&self) -> &Tensor {
        &self.features
    }

    /// Renders the table (optionally reordered) as aligned plain text with
    /// a `series` id column.
    pub fn render(&self, order: Option<&[usize]>) -> String {
        let default_order: Vec<usize> = (0..self.n_rows()).collect();
        let order = order.unwrap_or(&default_order);
        let mut headers = vec!["series".to_string()];
        headers.extend(self.column_names.iter().cloned());
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(9)).collect();
        let mut out = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!("{h:>w$}  ", w = w));
        }
        out.push('\n');
        for &i in order {
            out.push_str(&format!("{i:>w$}  ", w = widths[0]));
            for (c, w) in (0..self.features.cols()).zip(&widths[1..]) {
                out.push_str(&format!("{v:>w$.4}  ", v = self.features.at2(i, c), w = w));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FeatureTable {
        FeatureTable::new(
            vec!["a".into(), "b".into()],
            Tensor::from_vec(vec![0.5, 9.0, 0.1, 5.0, 0.9, 7.0], [3, 2]),
        )
    }

    #[test]
    fn sorting_orders_series() {
        let t = table();
        assert_eq!(t.sort_by(0, true), vec![1, 0, 2]);
        assert_eq!(t.sort_by(0, false), vec![2, 0, 1]);
        assert_eq!(t.sort_by(1, true), vec![1, 2, 0]);
    }

    #[test]
    fn column_selection() {
        let t = table();
        let sub = t.select_columns(&[1]);
        assert_eq!(sub.column_names(), &["b".to_string()]);
        assert_eq!(sub.value(0, 0), 9.0);
    }

    #[test]
    fn render_contains_ordered_rows() {
        let t = table();
        let order = t.sort_by(0, true);
        let text = t.render(Some(&order));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].trim_start().starts_with('1'));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_sort_column_panics() {
        table().sort_by(5, true);
    }
}

#![warn(missing_docs)]
// The error wall (clippy.toml) exempts test builds: tests assert on values
// and unwrap() freely.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]
//! # tcsl-explore
//!
//! Explorable Time Series Analysis (paper §2.2 "Visual exploration" and §3
//! step 4), headless: everything the TimeCSL GUI shows — raw series, learned
//! shapelets, shapelet↔subsequence matches, the tabular feature view with
//! per-shapelet sorting, and the 2-D t-SNE embedding of the representation —
//! is produced here as data structures and SVG documents.
//!
//! [`session::ExploreSession`] mirrors the demo's interaction loop: pick
//! shapelets, match them against series, view features in a table, project
//! with t-SNE, then redo the analysis with the selected shapelet subset.

pub mod importance;
pub mod report;
pub mod session;
pub mod svg;
pub mod tabular;
pub mod tsne;

pub use report::{html_report, ReportConfig};
pub use session::ExploreSession;
pub use tsne::TsneConfig;

//! The exploration session: the demo's step-4 interaction loop as an API.
//!
//! An [`ExploreSession`] wraps a pre-trained [`TimeCsl`] model and a
//! dataset, caches the representation, and exposes every GUI operation:
//! view a series or shapelet, "Match" a shapelet against a series, "Show in
//! Tabular", "Show in t-SNE", and derive a reduced model from a shapelet
//! selection to redo the analysis.
//!
//! Every entry point that depends on request data — series/column indices,
//! dataset size — is fallible and returns a typed [`TcslError`] instead of
//! panicking (DESIGN.md, "Error taxonomy & panic policy").

use crate::svg;
use crate::tabular::FeatureTable;
use crate::tsne::{tsne, TsneConfig};
use tcsl_core::TimeCsl;
use tcsl_data::normalize::{normalize_series, Normalization};
use tcsl_data::Dataset;
use tcsl_error::{TcslError, TcslResult};
use tcsl_shapelet::matching::{best_match_for_feature, ShapeletMatch};
use tcsl_tensor::Tensor;

/// An interactive exploration session over one dataset.
#[derive(Debug)]
pub struct ExploreSession {
    model: TimeCsl,
    dataset: Dataset,
    features: Tensor,
}

impl ExploreSession {
    /// Builds a session, computing (and caching) the representation.
    /// Empty datasets are an [`EmptyInput`](tcsl_error::ErrorClass) error.
    pub fn new(model: TimeCsl, dataset: Dataset) -> TcslResult<Self> {
        let features = model.transform(&dataset)?;
        Ok(ExploreSession {
            model,
            dataset,
            features,
        })
    }

    /// The wrapped model.
    pub fn model(&self) -> &TimeCsl {
        &self.model
    }

    /// The explored dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The cached `(N, D_repr)` representation.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Out-of-range series index → `Config` (request error).
    fn check_series(&self, i: usize) -> TcslResult<()> {
        if i >= self.dataset.len() {
            return Err(TcslError::config(format!(
                "series index {i} out of range: dataset {} has {} series",
                self.dataset.name,
                self.dataset.len()
            )));
        }
        Ok(())
    }

    /// Out-of-range feature columns → `Config` (request error).
    fn check_columns(&self, columns: &[usize]) -> TcslResult<()> {
        if columns.is_empty() {
            return Err(TcslError::config("select at least one feature column"));
        }
        let width = self.features.cols();
        if let Some(&bad) = columns.iter().find(|&&c| c >= width) {
            return Err(TcslError::config(format!(
                "feature column {bad} out of range: representation has {width} columns"
            )));
        }
        Ok(())
    }

    /// Fig. 3a: renders series `i` as SVG.
    pub fn render_series(&self, i: usize) -> TcslResult<String> {
        self.check_series(i)?;
        Ok(svg::series_chart(
            self.dataset.series(i),
            &format!("{} — series {i}", self.dataset.name),
        ))
    }

    /// Fig. 3c: renders the shapelet behind feature column `col` as SVG.
    pub fn render_shapelet(&self, col: usize) -> TcslResult<String> {
        let (gi, k) = self.model.bank().feature_to_shapelet(col)?;
        let grp = &self.model.bank().groups()[gi];
        let shapelet = grp.shapelet(k, self.model.bank().d);
        let pseudo = tcsl_data::TimeSeries::new(shapelet);
        Ok(svg::series_chart(
            &pseudo,
            &format!("shapelet {} (len {}, {})", col, grp.len, grp.measure.name()),
        ))
    }

    /// The demo's "Match" button: locates the best-matching subsequence of
    /// shapelet `col` in series `i`.
    pub fn match_shapelet(&self, i: usize, col: usize) -> TcslResult<ShapeletMatch> {
        self.check_series(i)?;
        // Matching runs on the normalized series — the space the features
        // live in.
        let normed = normalize_series(self.dataset.series(i), Normalization::ZScore);
        best_match_for_feature(self.model.bank(), col, &normed)
    }

    /// Fig. 3b: renders the match of shapelet `col` in series `i` as SVG.
    pub fn render_match(&self, i: usize, col: usize) -> TcslResult<String> {
        self.check_series(i)?;
        let normed = normalize_series(self.dataset.series(i), Normalization::ZScore);
        let m = best_match_for_feature(self.model.bank(), col, &normed)?;
        let (gi, k) = self.model.bank().feature_to_shapelet(col)?;
        let shapelet = self.model.bank().groups()[gi].shapelet(k, self.model.bank().d);
        Ok(svg::match_chart(
            &normed,
            &shapelet,
            m.start,
            m.score,
            &format!("series {i} × shapelet {col}"),
        ))
    }

    /// Fig. 3d: the tabular feature view over selected columns (all when
    /// `None`).
    pub fn tabular(&self, columns: Option<&[usize]>) -> TcslResult<FeatureTable> {
        let full = FeatureTable::new(self.model.feature_names(), self.features.clone());
        match columns {
            Some(cols) => {
                self.check_columns(cols)?;
                Ok(full.select_columns(cols))
            }
            None => Ok(full),
        }
    }

    /// Fig. 3e: t-SNE of the representation restricted to selected columns
    /// (all when `None`). Returns the `(N, 2)` layout.
    pub fn tsne_embedding(
        &self,
        columns: Option<&[usize]>,
        cfg: &TsneConfig,
    ) -> TcslResult<Tensor> {
        if self.dataset.len() < 4 {
            return Err(TcslError::config(format!(
                "t-SNE needs at least 4 series; dataset {} has {}",
                self.dataset.name,
                self.dataset.len()
            )));
        }
        let feats = match columns {
            Some(cols) => self.tabular(Some(cols))?.matrix().clone(),
            None => self.features.clone(),
        };
        Ok(tsne(&feats, cfg))
    }

    /// Fig. 3e rendered: t-SNE scatter coloured by labels when present.
    pub fn render_tsne(&self, columns: Option<&[usize]>, cfg: &TsneConfig) -> TcslResult<String> {
        let layout = self.tsne_embedding(columns, cfg)?;
        Ok(svg::scatter_chart(
            &layout,
            self.dataset.labels(),
            &format!("{} — t-SNE of shapelet features", self.dataset.name),
        ))
    }

    /// Suggests the `k` most "interesting" shapelets to explore: ANOVA-F
    /// against labels when the dataset is labeled, feature variance
    /// otherwise. Best first.
    pub fn suggest_shapelets(&self, k: usize) -> Vec<usize> {
        let scores = match self.dataset.labels() {
            Some(labels) if self.dataset.n_classes() >= 2 => {
                crate::importance::anova_f_scores(&self.features, labels)
            }
            _ => crate::importance::variance_scores(&self.features),
        };
        crate::importance::top_k(&scores, k)
    }

    /// Derives a reduced session using only the selected feature columns —
    /// the "redo Step 3 with the shapelets of interest" loop. The analysis
    /// can then be re-run on `reduced.features()`.
    pub fn with_selected(&self, columns: &[usize]) -> TcslResult<ExploreSession> {
        let model = self.model.with_selected_features(columns)?;
        ExploreSession::new(model, self.dataset.clone())
    }

    /// Derives a reduced session keeping one scale only (§3: "restart Step 3
    /// using the learned shapelets of length L").
    pub fn with_scale(&self, len: usize) -> TcslResult<ExploreSession> {
        let model = self.model.with_scale(len)?;
        ExploreSession::new(model, self.dataset.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_core::CslConfig;
    use tcsl_data::archive;
    use tcsl_error::ErrorClass;
    use tcsl_shapelet::{Measure, ShapeletConfig};

    fn session() -> ExploreSession {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 61);
        let scfg = ShapeletConfig {
            lengths: vec![8, 16],
            k_per_group: 3,
            measures: vec![Measure::Euclidean, Measure::Cosine],
            stride: 1,
        };
        let ccfg = CslConfig {
            epochs: 2,
            batch_size: 8,
            grains: vec![1.0],
            seed: 3,
            ..Default::default()
        };
        let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
        ExploreSession::new(model, test).unwrap()
    }

    #[test]
    fn session_caches_features() {
        let s = session();
        assert_eq!(s.features().rows(), s.dataset().len());
        assert_eq!(s.features().cols(), s.model().repr_dim());
    }

    #[test]
    fn match_score_equals_cached_feature() {
        let s = session();
        for col in [0usize, 5, 11] {
            let m = s.match_shapelet(2, col).unwrap();
            assert!(
                (m.score - s.features().at2(2, col)).abs() < 1e-4,
                "column {col}: {} vs {}",
                m.score,
                s.features().at2(2, col)
            );
        }
    }

    #[test]
    fn svg_panels_render() {
        let s = session();
        assert!(s.render_series(0).unwrap().starts_with("<svg"));
        assert!(s.render_shapelet(3).unwrap().contains("shapelet 3"));
        let m = s.render_match(1, 0).unwrap();
        assert!(m.contains("stroke-dasharray"));
        let t = s
            .render_tsne(
                None,
                &TsneConfig {
                    iterations: 30,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(t.matches("<circle").count() == s.dataset().len());
    }

    #[test]
    fn tabular_sorting_round_trip() {
        let s = session();
        let table = s.tabular(Some(&[0, 1])).unwrap();
        assert_eq!(table.column_names().len(), 2);
        let order = table.sort_by(0, true);
        assert_eq!(order.len(), s.dataset().len());
        // Ascending order by euclidean distance: first entry has the
        // smallest feature value.
        let first = table.value(order[0], 0);
        let last = table.value(*order.last().unwrap(), 0);
        assert!(first <= last);
    }

    #[test]
    fn suggested_shapelets_separate_classes_better_than_random() {
        let s = session();
        let suggested = s.suggest_shapelets(4);
        assert_eq!(suggested.len(), 4);
        // The top suggestion's F score must beat the median column's.
        let scores = crate::importance::anova_f_scores(s.features(), s.dataset().labels().unwrap());
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(scores[suggested[0]] >= median);
    }

    #[test]
    fn selection_reduces_dimensions_consistently() {
        let s = session();
        let reduced = s.with_selected(&[0, 2, 7]).unwrap();
        assert_eq!(reduced.features().cols(), 3);
        // Selected columns carry the same values as in the full session.
        for i in 0..s.dataset().len() {
            assert!((reduced.features().at2(i, 0) - s.features().at2(i, 0)).abs() < 1e-5);
            assert!((reduced.features().at2(i, 2) - s.features().at2(i, 7)).abs() < 1e-5);
        }
        let by_scale = s.with_scale(16).unwrap();
        assert_eq!(by_scale.features().cols(), 6);
    }

    #[test]
    fn bad_requests_are_typed_errors_not_panics() {
        let s = session();
        let n = s.dataset().len();
        let width = s.features().cols();

        // Out-of-range series index → Config, names the dataset.
        let err = s.render_series(n + 3).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Config);
        assert!(err.to_string().contains("out of range"), "{err}");
        assert_eq!(
            s.match_shapelet(n, 0).unwrap_err().class(),
            ErrorClass::Config
        );
        assert_eq!(
            s.render_match(n, 0).unwrap_err().class(),
            ErrorClass::Config
        );

        // Out-of-range feature column → typed error from the bank / session.
        assert!(s.render_shapelet(width + 10).is_err());
        assert!(s.match_shapelet(0, width + 10).is_err());
        assert_eq!(
            s.tabular(Some(&[width])).unwrap_err().class(),
            ErrorClass::Config
        );
        assert_eq!(
            s.tabular(Some(&[])).unwrap_err().class(),
            ErrorClass::Config
        );
        assert_eq!(
            s.with_selected(&[width + 1]).unwrap_err().class(),
            ErrorClass::Config
        );

        // A scale the model never learned → typed error, not a panic.
        assert!(s.with_scale(9999).is_err());
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let s = session();
        let empty = Dataset::unlabeled("empty", Vec::new());
        let err = ExploreSession::new(s.model().clone(), empty).unwrap_err();
        assert_eq!(err.class(), ErrorClass::EmptyInput);
    }

    #[test]
    fn tiny_dataset_tsne_is_a_config_error() {
        let s = session();
        let tiny = Dataset::unlabeled(
            "tiny",
            (0..3).map(|i| s.dataset().series(i).clone()).collect(),
        );
        let small = ExploreSession::new(s.model().clone(), tiny).unwrap();
        let err = small.render_tsne(None, &TsneConfig::default()).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Config);
        assert!(err.to_string().contains("at least 4"), "{err}");
    }
}

//! Exact t-SNE (van der Maaten & Hinton, 2008) for the demo's 2-D
//! representation view. O(N²) per iteration — fine for the interactive
//! dataset sizes TimeCSL explores. The high-dimensional affinity pass
//! (the only part that touches the full feature width) runs on the
//! blocked [`pairdist`] engine; `pairdist(x, x)` is bitwise symmetric
//! with an exactly-zero diagonal, so the conditional distributions see
//! the same symmetric input the old hand-rolled loop produced.

use tcsl_tensor::pairdist;
use tcsl_tensor::rng::{gauss, seeded};
use tcsl_tensor::Tensor;

/// t-SNE hyperparameters.
#[derive(Clone, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f32,
    /// Gradient iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f32,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 15.0,
            iterations: 300,
            learning_rate: 30.0,
            exaggeration: 4.0,
            seed: 0,
        }
    }
}

/// Embeds the rows of `x` (`N×F`) into 2-D. Returns an `(N, 2)` tensor.
pub fn tsne(x: &Tensor, cfg: &TsneConfig) -> Tensor {
    let n = x.rows();
    assert!(n >= 4, "t-SNE needs at least 4 points");
    let perplexity = cfg.perplexity.min((n as f32 - 1.0) / 3.0).max(2.0);

    // Pairwise squared distances in high dimension — one blocked engine
    // call instead of a scalar O(N²·F) double loop.
    let d2 = pairdist::pairdist(x, x);

    // Per-point binary search of sigma to hit the target perplexity.
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        let row = d2.row(i);
        let (mut beta, mut lo, mut hi) = (1.0f32, 0.0f32, f32::INFINITY);
        for _ in 0..50 {
            // Conditional distribution and its entropy at this beta.
            let mut sum = 0.0f32;
            let mut weighted = 0.0f32;
            for (j, &d) in row.iter().enumerate() {
                if j == i {
                    continue;
                }
                let w = (-beta * d).exp();
                sum += w;
                weighted += w * d;
            }
            if sum <= 0.0 {
                break;
            }
            let entropy = beta * weighted / sum + sum.ln();
            if (entropy - target_entropy).abs() < 1e-4 {
                break;
            }
            if entropy > target_entropy {
                lo = beta;
                beta = if hi.is_finite() {
                    0.5 * (beta + hi)
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = 0.5 * (beta + lo);
            }
        }
        let mut sum = 0.0f32;
        for j in 0..n {
            if j != i {
                let w = (-beta * row[j]).exp();
                p[i * n + j] = w;
                sum += w;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize and normalize.
    let mut pij = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }

    // Gradient descent on the 2-D layout with momentum.
    let mut rng = seeded(cfg.seed);
    let mut y: Vec<[f32; 2]> = (0..n)
        .map(|_| [0.01 * gauss(&mut rng), 0.01 * gauss(&mut rng)])
        .collect();
    let mut vel = vec![[0.0f32; 2]; n];
    let exag_until = cfg.iterations / 4;
    for iter in 0..cfg.iterations {
        let exag = if iter < exag_until {
            cfg.exaggeration
        } else {
            1.0
        };
        // Low-dimensional affinities (Student-t kernel).
        let mut q = vec![0.0f32; n * n];
        let mut qsum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }
        let momentum = if iter < 20 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f32; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let qnorm = (w / qsum).max(1e-12);
                let coeff = 4.0 * (exag * pij[i * n + j] - qnorm) * w;
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                // Clamp the per-step displacement: without per-parameter
                // gains (full Barnes–Hut implementations use them) large
                // early-exaggeration gradients can otherwise blow the
                // layout up.
                vel[i][k] = (momentum * vel[i][k] - cfg.learning_rate * grad[k]).clamp(-5.0, 5.0);
                y[i][k] += vel[i][k];
            }
        }
    }

    let mut out = Tensor::zeros([n, 2]);
    for (i, point) in y.iter().enumerate() {
        out.row_mut(i).copy_from_slice(point);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n_per: usize) -> (Tensor, Vec<usize>) {
        let mut rng = seeded(1);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                for d in 0..5 {
                    let center = if d == 0 && c == 1 { 10.0 } else { 0.0 };
                    data.push(center + gauss(&mut rng));
                }
                labels.push(c);
            }
        }
        (Tensor::from_vec(data, [2 * n_per, 5]), labels)
    }

    #[test]
    fn separated_blobs_stay_separated_in_2d() {
        let (x, labels) = two_blobs(15);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 250,
                ..Default::default()
            },
        );
        assert_eq!(y.shape().dims(), &[30, 2]);
        assert!(y.all_finite());
        // Mean intra-class 2-D distance < mean inter-class distance.
        let dist = |i: usize, j: usize| -> f32 {
            let (a, b) = (y.row(i), y.row(j));
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
        };
        let mut intra = (0.0f32, 0usize);
        let mut inter = (0.0f32, 0usize);
        for i in 0..30 {
            for j in (i + 1)..30 {
                if labels[i] == labels[j] {
                    intra = (intra.0 + dist(i, j), intra.1 + 1);
                } else {
                    inter = (inter.0 + dist(i, j), inter.1 + 1);
                }
            }
        }
        let (intra, inter) = (intra.0 / intra.1 as f32, inter.0 / inter.1 as f32);
        assert!(inter > intra * 1.5, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = two_blobs(8);
        let cfg = TsneConfig {
            iterations: 50,
            ..Default::default()
        };
        let a = tsne(&x, &cfg);
        let b = tsne(&x, &cfg);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn perplexity_is_clamped_for_tiny_inputs() {
        let (x, _) = two_blobs(3); // 6 points, default perplexity 15 → clamped
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 30,
                ..Default::default()
            },
        );
        assert!(y.all_finite());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_few_points_panics() {
        tsne(&Tensor::zeros([3, 2]), &TsneConfig::default());
    }
}

//! Exact t-SNE (van der Maaten & Hinton, 2008) for the demo's 2-D
//! representation view. O(N²) per gradient iteration — fine for the
//! interactive dataset sizes TimeCSL explores. The high-dimensional
//! affinity pass (the only part that touches the full feature width) is
//! routed by [`IndexBackend`]:
//!
//! * [`IndexBackend::Exact`] (the default) runs one blocked [`pairdist`]
//!   engine call (row blocks fanned out on the persistent worker pool);
//!   `pairdist(x, x)` is bitwise symmetric with an exactly-zero diagonal,
//!   so the conditional distributions see the same symmetric input the
//!   old hand-rolled loop produced.
//! * [`IndexBackend::Ivf`] computes *sparse* approximate affinities in the
//!   style of Barnes–Hut t-SNE (van der Maaten, 2014): each point's
//!   conditional distribution is supported on its `⌈3·perplexity⌉`
//!   approximate nearest neighbours from the IVF index, which drops the
//!   affinity pass from O(N²·F) to the index's probed-cell cost. Distant
//!   pairs contribute (almost) nothing to the exact conditionals, so the
//!   truncation changes little — and with `nprobe == nlist` the neighbour
//!   sets themselves are exact.
//!
//! [`pairdist`]: tcsl_tensor::pairdist::pairdist

// Numeric kernel — callers (the explore session) validate request input, so
// internal invariants here stay asserts/expects per the panic policy; the
// request-path error wall (clippy.toml) is lifted for this module.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use tcsl_analyzers::index::{IndexBackend, IvfIndex};
use tcsl_tensor::pairdist;
use tcsl_tensor::rng::{gauss, seeded};
use tcsl_tensor::Tensor;

/// t-SNE hyperparameters.
#[derive(Clone, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f32,
    /// Gradient iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f32,
    /// RNG seed for the initial layout.
    pub seed: u64,
    /// Neighbour-search engine for the affinity pass: exact dense
    /// conditionals, or IVF-pruned sparse ones.
    pub backend: IndexBackend,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 15.0,
            iterations: 300,
            learning_rate: 30.0,
            exaggeration: 4.0,
            seed: 0,
            backend: IndexBackend::Exact,
        }
    }
}

/// Binary-searches the precision `beta` of one conditional distribution
/// over the given squared distances (self pair excluded by the caller) to
/// hit `target_entropy`, then writes the normalized weights into `weights`
/// (cleared and refilled, one per distance, in order). Shared by the dense
/// and the sparse affinity paths: on the full non-self distance row it
/// reproduces the previous inline dense computation bit-for-bit.
fn conditional_weights(dists: &[f32], target_entropy: f32, weights: &mut Vec<f32>) {
    let (mut beta, mut lo, mut hi) = (1.0f32, 0.0f32, f32::INFINITY);
    for _ in 0..50 {
        // Conditional distribution and its entropy at this beta.
        let mut sum = 0.0f32;
        let mut weighted = 0.0f32;
        for &d in dists {
            let w = (-beta * d).exp();
            sum += w;
            weighted += w * d;
        }
        if sum <= 0.0 {
            break;
        }
        let entropy = beta * weighted / sum + sum.ln();
        if (entropy - target_entropy).abs() < 1e-4 {
            break;
        }
        if entropy > target_entropy {
            lo = beta;
            beta = if hi.is_finite() {
                0.5 * (beta + hi)
            } else {
                beta * 2.0
            };
        } else {
            hi = beta;
            beta = 0.5 * (beta + lo);
        }
    }
    weights.clear();
    weights.extend(dists.iter().map(|&d| (-beta * d).exp()));
    let sum: f32 = weights.iter().sum();
    if sum > 0.0 {
        for w in weights.iter_mut() {
            *w /= sum;
        }
    }
}

/// Dense conditionals: full `pairdist(x, x)` matrix, every non-self pair in
/// each point's distribution.
fn conditional_p_dense(x: &Tensor, target_entropy: f32) -> Vec<f32> {
    let n = x.rows();
    // Pairwise squared distances in high dimension — one blocked engine
    // call instead of a scalar O(N²·F) double loop.
    let d2 = pairdist::pairdist(x, x);
    let mut p = vec![0.0f32; n * n];
    let mut dists = Vec::with_capacity(n - 1);
    let mut weights = Vec::with_capacity(n - 1);
    for i in 0..n {
        let row = d2.row(i);
        dists.clear();
        dists.extend(
            row.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &d)| d),
        );
        conditional_weights(&dists, target_entropy, &mut weights);
        let mut w_iter = weights.iter();
        for j in (0..n).filter(|&j| j != i) {
            p[i * n + j] = *w_iter.next().expect("one weight per non-self pair");
        }
    }
    p
}

/// Sparse conditionals: each point's distribution is supported on its
/// `k_nn` approximate nearest neighbours from the IVF index (exact
/// distances, possibly missing far-cell neighbours), everything else stays
/// an exact zero until the symmetrization floor.
fn conditional_p_sparse(
    x: &Tensor,
    target_entropy: f32,
    k_nn: usize,
    nlist: usize,
    nprobe: usize,
) -> Vec<f32> {
    let n = x.rows();
    let index = IvfIndex::build(x, nlist, 0);
    // One extra neighbour covers the self-match each query finds in its
    // own cell. Internal invariant, not a request error: the queries ARE
    // the corpus (widths match by construction) and k_nn >= 2.
    let nn = index
        .knn(x, k_nn + 1, nprobe)
        .expect("internal: queries share the index corpus width and k >= 1");
    let mut p = vec![0.0f32; n * n];
    let mut ids = Vec::with_capacity(k_nn);
    let mut dists = Vec::with_capacity(k_nn);
    let mut weights = Vec::with_capacity(k_nn);
    for (i, row) in nn.iter().enumerate() {
        ids.clear();
        dists.clear();
        for &(j, d) in row.iter().filter(|&&(j, _)| j != i).take(k_nn) {
            ids.push(j);
            dists.push(d);
        }
        conditional_weights(&dists, target_entropy, &mut weights);
        for (&j, &w) in ids.iter().zip(&weights) {
            p[i * n + j] = w;
        }
    }
    p
}

/// Embeds the rows of `x` (`N×F`) into 2-D. Returns an `(N, 2)` tensor.
pub fn tsne(x: &Tensor, cfg: &TsneConfig) -> Tensor {
    let n = x.rows();
    assert!(n >= 4, "t-SNE needs at least 4 points");
    let perplexity = cfg.perplexity.min((n as f32 - 1.0) / 3.0).max(2.0);

    // Per-point binary search of sigma to hit the target perplexity.
    let target_entropy = perplexity.ln();
    let p = match cfg.backend {
        IndexBackend::Exact => conditional_p_dense(x, target_entropy),
        IndexBackend::Ivf { nlist, nprobe } => {
            // The usual Barnes–Hut neighbourhood size: 3× perplexity.
            let k_nn = ((3.0 * perplexity).ceil() as usize).clamp(2, n - 1);
            conditional_p_sparse(x, target_entropy, k_nn, nlist, nprobe)
        }
    };
    // Symmetrize and normalize.
    let mut pij = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }

    // Gradient descent on the 2-D layout with momentum.
    let mut rng = seeded(cfg.seed);
    let mut y: Vec<[f32; 2]> = (0..n)
        .map(|_| [0.01 * gauss(&mut rng), 0.01 * gauss(&mut rng)])
        .collect();
    let mut vel = vec![[0.0f32; 2]; n];
    let exag_until = cfg.iterations / 4;
    for iter in 0..cfg.iterations {
        let exag = if iter < exag_until {
            cfg.exaggeration
        } else {
            1.0
        };
        // Low-dimensional affinities (Student-t kernel).
        let mut q = vec![0.0f32; n * n];
        let mut qsum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }
        let momentum = if iter < 20 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f32; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let qnorm = (w / qsum).max(1e-12);
                let coeff = 4.0 * (exag * pij[i * n + j] - qnorm) * w;
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                // Clamp the per-step displacement: without per-parameter
                // gains (full Barnes–Hut implementations use them) large
                // early-exaggeration gradients can otherwise blow the
                // layout up.
                vel[i][k] = (momentum * vel[i][k] - cfg.learning_rate * grad[k]).clamp(-5.0, 5.0);
                y[i][k] += vel[i][k];
            }
        }
    }

    let mut out = Tensor::zeros([n, 2]);
    for (i, point) in y.iter().enumerate() {
        out.row_mut(i).copy_from_slice(point);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n_per: usize) -> (Tensor, Vec<usize>) {
        let mut rng = seeded(1);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                for d in 0..5 {
                    let center = if d == 0 && c == 1 { 10.0 } else { 0.0 };
                    data.push(center + gauss(&mut rng));
                }
                labels.push(c);
            }
        }
        (Tensor::from_vec(data, [2 * n_per, 5]), labels)
    }

    #[test]
    fn separated_blobs_stay_separated_in_2d() {
        let (x, labels) = two_blobs(15);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 250,
                ..Default::default()
            },
        );
        assert_eq!(y.shape().dims(), &[30, 2]);
        assert!(y.all_finite());
        // Mean intra-class 2-D distance < mean inter-class distance.
        let dist = |i: usize, j: usize| -> f32 {
            let (a, b) = (y.row(i), y.row(j));
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
        };
        let mut intra = (0.0f32, 0usize);
        let mut inter = (0.0f32, 0usize);
        for i in 0..30 {
            for j in (i + 1)..30 {
                if labels[i] == labels[j] {
                    intra = (intra.0 + dist(i, j), intra.1 + 1);
                } else {
                    inter = (inter.0 + dist(i, j), inter.1 + 1);
                }
            }
        }
        let (intra, inter) = (intra.0 / intra.1 as f32, inter.0 / inter.1 as f32);
        assert!(inter > intra * 1.5, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = two_blobs(8);
        let cfg = TsneConfig {
            iterations: 50,
            ..Default::default()
        };
        let a = tsne(&x, &cfg);
        let b = tsne(&x, &cfg);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn perplexity_is_clamped_for_tiny_inputs() {
        let (x, _) = two_blobs(3); // 6 points, default perplexity 15 → clamped
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 30,
                ..Default::default()
            },
        );
        assert!(y.all_finite());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_few_points_panics() {
        tsne(&Tensor::zeros([3, 2]), &TsneConfig::default());
    }

    #[test]
    fn ivf_backend_keeps_separated_blobs_separated() {
        let (x, labels) = two_blobs(15);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 250,
                backend: IndexBackend::Ivf {
                    nlist: 4,
                    nprobe: 2,
                },
                ..Default::default()
            },
        );
        assert!(y.all_finite());
        let dist = |i: usize, j: usize| -> f32 {
            let (a, b) = (y.row(i), y.row(j));
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
        };
        let mut intra = (0.0f32, 0usize);
        let mut inter = (0.0f32, 0usize);
        for i in 0..30 {
            for j in (i + 1)..30 {
                if labels[i] == labels[j] {
                    intra = (intra.0 + dist(i, j), intra.1 + 1);
                } else {
                    inter = (inter.0 + dist(i, j), inter.1 + 1);
                }
            }
        }
        let (intra, inter) = (intra.0 / intra.1 as f32, inter.0 / inter.1 as f32);
        assert!(inter > intra * 1.5, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn ivf_full_probe_layouts_are_partition_independent() {
        // With every cell probed the sparse path's neighbour sets are the
        // exact top-k whatever the coarse partition looks like, so two
        // completely different `nlist` choices must yield bit-identical
        // layouts — the t-SNE face of the nprobe == nlist parity contract.
        let (x, _) = two_blobs(10);
        let cfg = |nlist: usize| TsneConfig {
            iterations: 60,
            backend: IndexBackend::Ivf {
                nlist,
                nprobe: nlist,
            },
            ..Default::default()
        };
        let a = tsne(&x, &cfg(1));
        let b = tsne(&x, &cfg(5));
        for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
}

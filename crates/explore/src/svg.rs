//! Minimal SVG rendering of the demo's Figure 3 panels: line charts of
//! series and shapelets, match overlays, and t-SNE scatter plots. No
//! dependencies — documents are assembled as strings.

use tcsl_data::TimeSeries;
use tcsl_tensor::Tensor;

/// Categorical palette (colour per variable / class).
const PALETTE: [&str; 8] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
];

fn color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

struct Frame {
    width: f32,
    height: f32,
    margin: f32,
    x_range: (f32, f32),
    y_range: (f32, f32),
}

impl Frame {
    fn map(&self, x: f32, y: f32) -> (f32, f32) {
        let (x0, x1) = self.x_range;
        let (y0, y1) = self.y_range;
        let sx = self.margin + (x - x0) / (x1 - x0).max(1e-9) * (self.width - 2.0 * self.margin);
        let sy = self.height
            - self.margin
            - (y - y0) / (y1 - y0).max(1e-9) * (self.height - 2.0 * self.margin);
        (sx, sy)
    }
}

fn document(width: f32, height: f32, title: &str, body: &str) -> String {
    format!(
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" ",
            "viewBox=\"0 0 {w} {h}\">\n",
            "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n",
            "<text x=\"{tx}\" y=\"16\" font-family=\"sans-serif\" font-size=\"13\" ",
            "text-anchor=\"middle\">{title}</text>\n{body}</svg>\n"
        ),
        w = width,
        h = height,
        tx = width / 2.0,
        title = title,
        body = body
    )
}

fn polyline(points: &[(f32, f32)], stroke: &str, width: f32, dashed: bool) -> String {
    let pts: Vec<String> = points
        .iter()
        .map(|(x, y)| format!("{x:.1},{y:.1}"))
        .collect();
    let dash = if dashed {
        " stroke-dasharray=\"4 3\""
    } else {
        ""
    };
    format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{width}\"{dash}/>\n",
        pts.join(" ")
    )
}

fn value_range(values: impl Iterator<Item = f32>) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if hi - lo < 1e-9 {
        (lo - 1.0, hi + 1.0)
    } else {
        let pad = 0.05 * (hi - lo);
        (lo - pad, hi + pad)
    }
}

/// Renders a multivariate series as one polyline per variable (Fig. 3a/3c).
pub fn series_chart(s: &TimeSeries, title: &str) -> String {
    let frame = Frame {
        width: 480.0,
        height: 200.0,
        margin: 24.0,
        x_range: (0.0, s.len() as f32 - 1.0),
        y_range: value_range(s.values().as_slice().iter().copied()),
    };
    let mut body = String::new();
    for v in 0..s.n_vars() {
        let pts: Vec<(f32, f32)> = s
            .variable(v)
            .iter()
            .enumerate()
            .map(|(t, &x)| frame.map(t as f32, x))
            .collect();
        body.push_str(&polyline(&pts, color(v), 1.5, false));
    }
    document(frame.width, frame.height, title, &body)
}

/// Renders a series with a shapelet overlaid at its best-match position
/// (Fig. 3b): series in colour, shapelet dashed black, match window shaded.
pub fn match_chart(
    s: &TimeSeries,
    shapelet: &Tensor, // (D, len)
    start: usize,
    score: f32,
    title: &str,
) -> String {
    let frame = Frame {
        width: 480.0,
        height: 200.0,
        margin: 24.0,
        x_range: (0.0, s.len() as f32 - 1.0),
        y_range: value_range(
            s.values()
                .as_slice()
                .iter()
                .copied()
                .chain(shapelet.as_slice().iter().copied()),
        ),
    };
    let len = shapelet.cols();
    let mut body = String::new();
    // Shaded match window.
    let (x0, _) = frame.map(start as f32, 0.0);
    let (x1, _) = frame.map((start + len - 1) as f32, 0.0);
    body.push_str(&format!(
        "<rect x=\"{x0:.1}\" y=\"{m}\" width=\"{w:.1}\" height=\"{h}\" fill=\"#fde68a\" opacity=\"0.5\"/>\n",
        m = frame.margin,
        w = x1 - x0,
        h = frame.height - 2.0 * frame.margin
    ));
    for v in 0..s.n_vars() {
        let pts: Vec<(f32, f32)> = s
            .variable(v)
            .iter()
            .enumerate()
            .map(|(t, &x)| frame.map(t as f32, x))
            .collect();
        body.push_str(&polyline(&pts, color(v), 1.5, false));
        let spts: Vec<(f32, f32)> = shapelet
            .row(v)
            .iter()
            .enumerate()
            .map(|(t, &x)| frame.map((start + t) as f32, x))
            .collect();
        body.push_str(&polyline(&spts, "#111111", 2.0, true));
    }
    body.push_str(&format!(
        "<text x=\"{x}\" y=\"32\" font-family=\"sans-serif\" font-size=\"11\">score = {score:.4}</text>\n",
        x = frame.margin
    ));
    document(frame.width, frame.height, title, &body)
}

/// Renders 2-D points as a scatter plot, coloured by optional labels
/// (Fig. 3e, the t-SNE view).
pub fn scatter_chart(points: &Tensor, labels: Option<&[usize]>, title: &str) -> String {
    assert_eq!(points.cols(), 2, "scatter needs (N, 2) points");
    let frame = Frame {
        width: 360.0,
        height: 320.0,
        margin: 24.0,
        x_range: value_range((0..points.rows()).map(|i| points.at2(i, 0))),
        y_range: value_range((0..points.rows()).map(|i| points.at2(i, 1))),
    };
    let mut body = String::new();
    for i in 0..points.rows() {
        let (x, y) = frame.map(points.at2(i, 0), points.at2(i, 1));
        let c = labels.map_or(color(0), |ls| color(ls[i]));
        body.push_str(&format!(
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3.5\" fill=\"{c}\" opacity=\"0.85\"/>\n"
        ));
    }
    document(frame.width, frame.height, title, &body)
}

/// Renders a learning curve (loss per epoch) — the demo's training
/// diagnostic plot (§3, step 2).
pub fn learning_curve_chart(losses: &[f32], title: &str) -> String {
    assert!(!losses.is_empty(), "empty learning curve");
    let frame = Frame {
        width: 360.0,
        height: 200.0,
        margin: 28.0,
        x_range: (0.0, losses.len() as f32 - 1.0),
        y_range: value_range(losses.iter().copied()),
    };
    let pts: Vec<(f32, f32)> = losses
        .iter()
        .enumerate()
        .map(|(e, &l)| frame.map(e as f32, l))
        .collect();
    let mut body = polyline(&pts, color(0), 2.0, false);
    for &(x, y) in &pts {
        body.push_str(&format!(
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"2.5\" fill=\"{}\"/>\n",
            color(0)
        ));
    }
    document(frame.width, frame.height, title, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_formed(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced: every <polyline ends with /> (self-closing) and the
        // document contains exactly one closing tag.
        assert_eq!(svg.matches("</svg>").count(), 1);
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn series_chart_renders_all_variables() {
        let s = TimeSeries::multivariate(vec![vec![0.0, 1.0, 0.5], vec![1.0, -1.0, 0.0]]);
        let svg = series_chart(&s, "demo");
        well_formed(&svg);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("demo"));
    }

    #[test]
    fn match_chart_has_window_and_dashes() {
        let s = TimeSeries::univariate(vec![0.0, 1.0, 2.0, 1.0, 0.0, -1.0]);
        let shapelet = Tensor::from_vec(vec![1.0, 2.0, 1.0], [1, 3]);
        let svg = match_chart(&s, &shapelet, 1, 0.05, "match");
        well_formed(&svg);
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("score = 0.05"));
        assert!(svg.contains("<rect"));
    }

    #[test]
    fn scatter_colors_by_label() {
        let pts = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 2.0, 0.5], [3, 2]);
        let svg = scatter_chart(&pts, Some(&[0, 1, 1]), "tsne");
        well_formed(&svg);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains(PALETTE[1]));
    }

    #[test]
    fn learning_curve_has_one_point_per_epoch() {
        let svg = learning_curve_chart(&[2.0, 1.0, 0.5], "loss");
        well_formed(&svg);
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = TimeSeries::univariate(vec![5.0; 10]);
        well_formed(&series_chart(&s, "flat"));
    }
}
